package sp

import "github.com/authhints/spv/internal/graph"

// LowerBound estimates a lower bound on the shortest path distance from v to
// the (implicit) target. A bound is admissible when LB(v) ≤ dist(v, vt) for
// all v; admissibility is all A* needs for optimality here because closed
// nodes are re-opened when a shorter way to them is found (the landmark
// bounds of §V-A stay admissible after quantization and compression but are
// not guaranteed consistent).
type LowerBound func(v graph.NodeID) float64

// AStar computes a shortest path from src to dst using the A* algorithm with
// the given admissible lower bound (paper §II-C). It returns the distance
// and one shortest path, or (Unreachable, nil). It runs on a pooled
// Workspace; searches issued in a loop should hold a Workspace and call its
// AStar method directly.
func AStar(g graph.View, src, dst graph.NodeID, lb LowerBound) (float64, graph.Path) {
	w := AcquireWorkspace(g.NumNodes())
	defer ReleaseWorkspace(w)
	return w.AStar(g, src, dst, lb)
}

// BiDijkstra computes a shortest path with bidirectional Dijkstra search
// (paper §II-C, [24]): two concurrent expansions from source and target that
// stop when the sum of the two frontiers' minimum keys reaches the best
// meeting distance found.
func BiDijkstra(g graph.View, src, dst graph.NodeID) (float64, graph.Path) {
	if src == dst {
		return 0, graph.Path{src}
	}
	n := g.NumNodes()
	type side struct {
		dist   []float64
		parent []graph.NodeID
		done   []bool
		heap   *Heap
	}
	mkSide := func(root graph.NodeID) *side {
		s := &side{
			dist:   make([]float64, n),
			parent: make([]graph.NodeID, n),
			done:   make([]bool, n),
			heap:   NewHeap(64),
		}
		for i := range s.dist {
			s.dist[i] = Unreachable
			s.parent[i] = graph.Invalid
		}
		s.dist[root] = 0
		s.heap.Push(root, 0)
		return s
	}
	fwd, bwd := mkSide(src), mkSide(dst)

	best := Unreachable
	var meet graph.NodeID = graph.Invalid

	relax := func(s, other *side, v graph.NodeID, d float64) {
		s.done[v] = true
		for _, e := range g.Neighbors(v) {
			if s.done[e.To] {
				continue
			}
			nd := d + e.W
			if nd < s.dist[e.To] {
				if s.dist[e.To] == Unreachable {
					s.heap.Push(e.To, nd)
				} else {
					s.heap.DecreaseKey(e.To, nd)
				}
				s.dist[e.To] = nd
				s.parent[e.To] = v
			}
			if other.dist[e.To] < Unreachable && nd+other.dist[e.To] < best {
				best = nd + other.dist[e.To]
				meet = e.To
			}
		}
		if other.dist[v] < Unreachable && d+other.dist[v] < best {
			best = d + other.dist[v]
			meet = v
		}
	}

	for fwd.heap.Len() > 0 || bwd.heap.Len() > 0 {
		fMin, bMin := Unreachable, Unreachable
		if fwd.heap.Len() > 0 {
			fMin = fwd.heap.Peek()
		}
		if bwd.heap.Len() > 0 {
			bMin = bwd.heap.Peek()
		}
		if fMin+bMin >= best {
			break
		}
		if fMin <= bMin {
			v, d := fwd.heap.Pop()
			relax(fwd, bwd, v, d)
		} else {
			v, d := bwd.heap.Pop()
			relax(bwd, fwd, v, d)
		}
	}
	if meet == graph.Invalid {
		return Unreachable, nil
	}
	// Stitch the two half-paths at the meeting node.
	var rev graph.Path
	for u := meet; u != graph.Invalid; u = fwd.parent[u] {
		rev = append(rev, u)
	}
	path := make(graph.Path, 0, len(rev)+4)
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	for u := bwd.parent[meet]; u != graph.Invalid; u = bwd.parent[u] {
		path = append(path, u)
	}
	return best, path
}
