package sp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/authhints/spv/internal/graph"
)

// randomWorkspaceGraph builds a connected random graph for equivalence
// tests.
func randomWorkspaceGraph(t *testing.T, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*100, rng.Float64()*100)
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)), 1+rng.Float64()*10)
	}
	for i := 0; i < extra; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+rng.Float64()*10)
		}
	}
	return g
}

// TestWorkspaceMatchesFreshSearch pins the tentpole invariant: a reused
// workspace over the frozen CSR produces exactly the same distances, paths
// and settle order as the one-shot package functions over the mutable
// graph — across many consecutive queries on one workspace (epoch reuse)
// and across graph forms.
func TestWorkspaceMatchesFreshSearch(t *testing.T) {
	g := randomWorkspaceGraph(t, 300, 260, 42)
	view := g.Freeze()
	w := NewWorkspace(view.NumNodes())
	rng := rand.New(rand.NewSource(7))

	for i := 0; i < 50; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))

		wantD, wantP := DijkstraTo(g, src, dst)
		gotD, gotP := w.DijkstraTo(view, src, dst)
		if wantD != gotD {
			t.Fatalf("query %d: dist %g vs %g", i, gotD, wantD)
		}
		if len(wantP) != len(gotP) {
			t.Fatalf("query %d: path len %d vs %d", i, len(gotP), len(wantP))
		}
		for j := range wantP {
			if wantP[j] != gotP[j] {
				t.Fatalf("query %d: path[%d] = %d vs %d", i, j, gotP[j], wantP[j])
			}
		}

		bound := wantD * 1.2
		tree, wantSettled := DijkstraBounded(g, src, bound)
		gotSettled := w.DijkstraBounded(view, src, bound)
		if len(wantSettled) != len(gotSettled) {
			t.Fatalf("query %d: settled %d vs %d nodes", i, len(gotSettled), len(wantSettled))
		}
		for j, v := range wantSettled {
			if gotSettled[j] != v {
				t.Fatalf("query %d: settle order diverges at %d: %d vs %d", i, j, gotSettled[j], v)
			}
			if tree.Dist[v] != w.DistOf(v) {
				t.Fatalf("query %d: settled dist of %d: %g vs %g", i, v, w.DistOf(v), tree.Dist[v])
			}
		}
		// Unsettled nodes must read as Unreachable even though the
		// workspace holds tentative frontier labels internally.
		for v := 0; v < g.NumNodes(); v++ {
			if tree.Dist[v] == Unreachable && w.DistOf(graph.NodeID(v)) != Unreachable {
				t.Fatalf("query %d: tentative label of %d leaked as settled", i, v)
			}
		}
	}
}

// TestWorkspaceAStarMatchesDijkstra cross-checks the workspace A* against
// exact distances under the zero lower bound (degenerates to Dijkstra) and
// a random admissible bound.
func TestWorkspaceAStarMatchesDijkstra(t *testing.T) {
	g := randomWorkspaceGraph(t, 200, 150, 11)
	view := g.Freeze()
	w := NewWorkspace(view.NumNodes())
	rng := rand.New(rand.NewSource(13))

	for i := 0; i < 30; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		want, _ := DijkstraTo(g, src, dst)

		zero := func(graph.NodeID) float64 { return 0 }
		got, path := w.AStar(view, src, dst, zero)
		if got != want {
			t.Fatalf("query %d: A*(0) dist %g, want %g", i, got, want)
		}
		if want != Unreachable {
			if path.Source() != src || path.Target() != dst {
				t.Fatalf("query %d: A* path endpoints %d→%d", i, path.Source(), path.Target())
			}
		}
		// An admissible fraction of the true remaining distance.
		exact := Dijkstra(g, dst)
		frac := rng.Float64()
		lb := func(v graph.NodeID) float64 {
			if exact.Dist[v] == Unreachable {
				return 0
			}
			return exact.Dist[v] * frac
		}
		if got, _ := w.AStar(view, src, dst, lb); got != want {
			t.Fatalf("query %d: A*(frac) dist %g, want %g", i, got, want)
		}
	}
}

// TestWorkspaceDijkstraToTargets checks target-set searches against full
// Dijkstra rows, including duplicate targets and reuse across calls.
func TestWorkspaceDijkstraToTargets(t *testing.T) {
	g := randomWorkspaceGraph(t, 150, 80, 5)
	view := g.Freeze()
	w := NewWorkspace(view.NumNodes())
	rng := rand.New(rand.NewSource(3))

	for i := 0; i < 20; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		targets := make([]graph.NodeID, 0, 12)
		for j := 0; j < 10; j++ {
			targets = append(targets, graph.NodeID(rng.Intn(g.NumNodes())))
		}
		targets = append(targets, targets[0], targets[1]) // duplicates

		want := Dijkstra(g, src)
		got := w.DijkstraToTargets(view, src, targets, nil)
		if len(got) != len(targets) {
			t.Fatalf("got %d distances for %d targets", len(got), len(targets))
		}
		for j, v := range targets {
			if got[j] != want.Dist[v] {
				t.Fatalf("target %d (node %d): %g, want %g", j, v, got[j], want.Dist[v])
			}
		}
	}
}

// TestWorkspaceRow checks full-row extraction, including row reuse.
func TestWorkspaceRow(t *testing.T) {
	g := randomWorkspaceGraph(t, 120, 60, 9)
	view := g.Freeze()
	w := NewWorkspace(view.NumNodes())
	var row []float64
	for i := 0; i < 5; i++ {
		src := graph.NodeID(i * 7 % g.NumNodes())
		want := Dijkstra(g, src)
		row = w.DijkstraRow(view, src, row)
		for v := range row {
			if row[v] != want.Dist[v] {
				t.Fatalf("row[%d] = %g, want %g", v, row[v], want.Dist[v])
			}
		}
	}
}

// TestWorkspaceEpochWrap forces the uint32 epoch to wrap and checks that
// labels from the pre-wrap era cannot leak into post-wrap searches.
func TestWorkspaceEpochWrap(t *testing.T) {
	g := randomWorkspaceGraph(t, 50, 30, 21)
	w := NewWorkspace(g.NumNodes())
	d1, p1 := w.DijkstraTo(g, 0, 40)

	w.epoch = math.MaxUint32 - 1 // two searches to wrap
	if d, _ := w.DijkstraTo(g, 0, 40); d != d1 {
		t.Fatalf("pre-wrap dist %g, want %g", d, d1)
	}
	d2, p2 := w.DijkstraTo(g, 0, 40) // epoch wraps to 0 → full clear → 1
	if w.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", w.epoch)
	}
	if d2 != d1 || len(p2) != len(p1) {
		t.Fatalf("post-wrap result (%g, %d hops) differs from (%g, %d hops)", d2, len(p2), d1, len(p1))
	}
}

// TestWorkspaceGrowAcrossGraphs reuses one pooled workspace across graphs
// of different sizes, the serving-layer pattern.
func TestWorkspaceGrowAcrossGraphs(t *testing.T) {
	small := randomWorkspaceGraph(t, 30, 10, 1)
	big := randomWorkspaceGraph(t, 400, 300, 2)
	w := AcquireWorkspace(small.NumNodes())
	defer ReleaseWorkspace(w)
	for i := 0; i < 3; i++ {
		for _, g := range []*graph.Graph{small, big} {
			want, _ := DijkstraTo(g, 0, graph.NodeID(g.NumNodes()-1))
			got, _ := w.DijkstraTo(g, 0, graph.NodeID(g.NumNodes()-1))
			if got != want {
				t.Fatalf("iteration %d on %d nodes: %g, want %g", i, g.NumNodes(), got, want)
			}
		}
	}
}
