package sp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/authhints/spv/internal/graph"
)

// fig1 builds the paper's Figure 1 network; shortest v1→v4 path is
// v1,v3,v5,v6,v4 with cost 8 (NodeIDs are paper indices minus one).
func fig1(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New(7)
	for i := 0; i < 7; i++ {
		g.AddNode(float64(i), 0)
	}
	for _, e := range []struct {
		u, v int
		w    float64
	}{
		{0, 1, 1}, {1, 3, 9}, {0, 2, 2}, {2, 4, 3},
		{4, 5, 2}, {5, 3, 1}, {1, 6, 2}, {6, 5, 5},
	} {
		g.MustAddEdge(graph.NodeID(e.u), graph.NodeID(e.v), e.w)
	}
	return g
}

func TestDijkstraFig1(t *testing.T) {
	g := fig1(t)
	tr := Dijkstra(g, 0)
	want := []float64{0, 1, 2, 8, 5, 7, 3}
	for v, d := range tr.Dist {
		if d != want[v] {
			t.Errorf("dist(v1, v%d) = %v, want %v", v+1, d, want[v])
		}
	}
	p := tr.PathTo(3)
	wantPath := graph.Path{0, 2, 4, 5, 3}
	if len(p) != len(wantPath) {
		t.Fatalf("path %v, want %v", p, wantPath)
	}
	for i := range p {
		if p[i] != wantPath[i] {
			t.Fatalf("path %v, want %v", p, wantPath)
		}
	}
}

func TestDijkstraToEarlyStop(t *testing.T) {
	g := fig1(t)
	d, p := DijkstraTo(g, 0, 3)
	if d != 8 {
		t.Errorf("dist = %v, want 8", d)
	}
	if err := p.Validate(g, 0, 3); err != nil {
		t.Errorf("path invalid: %v", err)
	}
	if got, _ := p.DistIn(g); got != 8 {
		t.Errorf("path distance %v, want 8", got)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddNode(0, 0)
	g.AddNode(1, 0)
	g.AddNode(2, 0)
	g.MustAddEdge(0, 1, 5)
	d, p := DijkstraTo(g, 0, 2)
	if d != Unreachable || p != nil {
		t.Errorf("expected unreachable, got %v %v", d, p)
	}
	tr := Dijkstra(g, 0)
	if tr.PathTo(2) != nil {
		t.Error("PathTo unreachable node should be nil")
	}
}

func TestDijkstraBoundedSettlesExactlyWithinBound(t *testing.T) {
	g := fig1(t)
	full := Dijkstra(g, 0)
	for _, bound := range []float64{0, 2, 3, 5, 7, 8, 100} {
		tr, settled := DijkstraBounded(g, 0, bound)
		want := map[graph.NodeID]bool{}
		for v, d := range full.Dist {
			if d <= bound {
				want[graph.NodeID(v)] = true
			}
		}
		if len(settled) != len(want) {
			t.Errorf("bound %v: settled %d nodes, want %d", bound, len(settled), len(want))
		}
		prev := -1.0
		for _, v := range settled {
			if !want[v] {
				t.Errorf("bound %v: settled %d outside bound", bound, v)
			}
			if tr.Dist[v] != full.Dist[v] {
				t.Errorf("bound %v: dist[%d] = %v, want %v", bound, v, tr.Dist[v], full.Dist[v])
			}
			if tr.Dist[v] < prev {
				t.Errorf("bound %v: settled order not monotone", bound)
			}
			prev = tr.Dist[v]
		}
		// Unsettled nodes must read Unreachable.
		for v := 0; v < g.NumNodes(); v++ {
			if !want[graph.NodeID(v)] && tr.Dist[v] != Unreachable {
				t.Errorf("bound %v: unsettled node %d has dist %v", bound, v, tr.Dist[v])
			}
		}
	}
}

func TestDijkstraToTargets(t *testing.T) {
	g := fig1(t)
	targets := []graph.NodeID{3, 6, 0}
	d := DijkstraToTargets(g, 0, targets)
	want := []float64{8, 3, 0}
	for i := range targets {
		if d[i] != want[i] {
			t.Errorf("dist to %d = %v, want %v", targets[i], d[i], want[i])
		}
	}
}

func TestDijkstraToTargetsUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddNode(0, 0)
	g.AddNode(1, 0)
	g.AddNode(2, 0)
	g.MustAddEdge(0, 1, 1)
	d := DijkstraToTargets(g, 0, []graph.NodeID{1, 2})
	if d[0] != 1 || d[1] != Unreachable {
		t.Errorf("got %v, want [1, Unreachable]", d)
	}
}

func TestAStarMatchesDijkstraZeroHeuristic(t *testing.T) {
	g := fig1(t)
	zero := func(graph.NodeID) float64 { return 0 }
	for s := 0; s < g.NumNodes(); s++ {
		full := Dijkstra(g, graph.NodeID(s))
		for d := 0; d < g.NumNodes(); d++ {
			dist, path := AStar(g, graph.NodeID(s), graph.NodeID(d), zero)
			if dist != full.Dist[d] {
				t.Errorf("A*(%d,%d) = %v, want %v", s, d, dist, full.Dist[d])
			}
			if dist != Unreachable {
				got, err := path.DistIn(g)
				if err != nil || got != dist {
					t.Errorf("A*(%d,%d) path cost %v err %v, want %v", s, d, got, err, dist)
				}
			}
		}
	}
}

func TestBiDijkstraFig1(t *testing.T) {
	g := fig1(t)
	for s := 0; s < g.NumNodes(); s++ {
		full := Dijkstra(g, graph.NodeID(s))
		for d := 0; d < g.NumNodes(); d++ {
			dist, path := BiDijkstra(g, graph.NodeID(s), graph.NodeID(d))
			if dist != full.Dist[d] {
				t.Errorf("BiDijkstra(%d,%d) = %v, want %v", s, d, dist, full.Dist[d])
			}
			if dist != Unreachable && dist > 0 {
				got, err := path.DistIn(g)
				if err != nil || got != dist {
					t.Errorf("BiDijkstra(%d,%d) path %v cost %v err %v, want %v", s, d, path, got, err, dist)
				}
				if err := path.Validate(g, graph.NodeID(s), graph.NodeID(d)); err != nil {
					t.Errorf("BiDijkstra(%d,%d) path invalid: %v", s, d, err)
				}
			}
		}
	}
}

func TestFloydWarshallFig1(t *testing.T) {
	g := fig1(t)
	d := FloydWarshall(g)
	if d[0][3] != 8 {
		t.Errorf("FW dist(v1,v4) = %v, want 8", d[0][3])
	}
	for i := range d {
		if d[i][i] != 0 {
			t.Errorf("FW dist(%d,%d) = %v, want 0", i, i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Errorf("FW asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// randomGraph builds a random connected graph with n nodes.
func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*1000, rng.Float64()*1000)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1+rng.Float64()*99)
	}
	for k := 0; k < n; k++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+rng.Float64()*99)
		}
	}
	return g
}

// TestAllPairsAgainstFloydWarshall is the oracle cross-validation promised
// in DESIGN.md: repeated Dijkstra must equal Floyd–Warshall exactly on
// random graphs (same additions in different order can differ in the last
// ulp, so compare with a tiny tolerance).
func TestAllPairsAgainstFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(40))
		fw := FloydWarshall(g)
		dj := DistanceMatrix(g)
		for i := range fw {
			for j := range fw {
				a, b := fw[i][j], dj[i][j]
				if a == Unreachable || b == Unreachable {
					if a != b {
						t.Logf("seed %d: (%d,%d) reachability differs", seed, i, j)
						return false
					}
					continue
				}
				if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
					t.Logf("seed %d: (%d,%d) %v vs %v", seed, i, j, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBiDijkstraAgainstDijkstraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(80))
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		d := graph.NodeID(rng.Intn(g.NumNodes()))
		want, _ := DijkstraTo(g, s, d)
		got, path := BiDijkstra(g, s, d)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Logf("seed %d: BiDijkstra(%d,%d) = %v, want %v", seed, s, d, got, want)
			return false
		}
		if got != Unreachable && s != d {
			pd, err := path.DistIn(g)
			if err != nil || math.Abs(pd-got) > 1e-9*(1+got) {
				t.Logf("seed %d: path cost %v err %v", seed, pd, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAStarAdmissibleHeuristicProperty: with a randomly scaled-down true
// distance (admissible but inconsistent), A* must still return the optimum.
func TestAStarAdmissibleHeuristicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(50))
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		d := graph.NodeID(rng.Intn(g.NumNodes()))
		toDst := Dijkstra(g, d) // undirected: dist(v,d) = dist(d,v)
		// Random per-node deflation keeps admissibility, breaks consistency.
		scale := make([]float64, g.NumNodes())
		for i := range scale {
			scale[i] = rng.Float64()
		}
		lb := func(v graph.NodeID) float64 {
			if toDst.Dist[v] == Unreachable {
				return 0
			}
			return toDst.Dist[v] * scale[v]
		}
		want, _ := DijkstraTo(g, s, d)
		got, path := AStar(g, s, d, lb)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Logf("seed %d: A*(%d,%d) = %v, want %v", seed, s, d, got, want)
			return false
		}
		if got != Unreachable {
			pd, err := path.DistIn(g)
			if err != nil || math.Abs(pd-got) > 1e-9*(1+got) {
				t.Logf("seed %d: path cost %v err %v", seed, pd, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHeapBasics(t *testing.T) {
	h := NewHeap(4)
	if h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	h.Push(1, 5)
	h.Push(2, 3)
	h.Push(3, 8)
	if h.Peek() != 3 {
		t.Errorf("Peek = %v, want 3", h.Peek())
	}
	h.DecreaseKey(3, 1)
	if !h.Contains(3) || h.Contains(9) {
		t.Error("Contains wrong")
	}
	v, k := h.Pop()
	if v != 3 || k != 1 {
		t.Errorf("Pop = (%d,%v), want (3,1)", v, k)
	}
	h.DecreaseKey(1, 10) // not smaller: no-op
	v, k = h.Pop()
	if v != 2 || k != 3 {
		t.Errorf("Pop = (%d,%v), want (2,3)", v, k)
	}
	v, k = h.Pop()
	if v != 1 || k != 5 {
		t.Errorf("Pop = (%d,%v), want (1,5)", v, k)
	}
	if h.Len() != 0 {
		t.Error("heap not empty at end")
	}
}

func TestHeapSortsRandomKeysProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		h := NewHeap(n)
		keys := make([]float64, n)
		for i := 0; i < n; i++ {
			keys[i] = rng.Float64() * 1000
			h.Push(graph.NodeID(i), keys[i]+500) // push inflated
		}
		for i := 0; i < n; i++ {
			h.DecreaseKey(graph.NodeID(i), keys[i]) // then decrease to real
		}
		sort.Float64s(keys)
		for i := 0; i < n; i++ {
			_, k := h.Pop()
			if k != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllPairsRowsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 50)
	var next graph.NodeID
	AllPairsRows(g, func(src graph.NodeID, dist []float64) {
		if src != next {
			t.Fatalf("row %d delivered, want %d", src, next)
		}
		if len(dist) != g.NumNodes() {
			t.Fatalf("row %d has %d entries", src, len(dist))
		}
		next++
	})
	if int(next) != g.NumNodes() {
		t.Fatalf("delivered %d rows, want %d", next, g.NumNodes())
	}
}
