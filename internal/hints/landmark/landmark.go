// Package landmark implements the authenticated hints of the LDM method
// (paper §V-A): landmark selection, per-node landmark distance vectors Ψ(v)
// (Eq. 2), triangle-inequality lower bounds (Eq. 3, Theorem 1), b-bit
// distance quantization (Eq. 5, Lemma 3) and ξ-threshold distance
// compression with reference nodes (Lemma 4).
//
// All quantized distances are held as integer units of the quantization step
// λ = Dmax / (2^b − 1): distb(s_i, v) = λ · unit. Working in units keeps the
// arithmetic exact; values convert to distances only at the edges.
package landmark

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"github.com/authhints/spv/internal/graph"
	"github.com/authhints/spv/internal/par"
	"github.com/authhints/spv/internal/sp"
)

// Strategy selects how landmark nodes are chosen.
type Strategy string

const (
	// Farthest implements the farthest-point heuristic of Goldberg &
	// Harrelson [26]: each new landmark maximizes the minimum graph distance
	// to the already chosen ones. Selection reuses the same Dijkstra runs
	// that produce the distance vectors, so it costs nothing extra.
	Farthest Strategy = "farthest"
	// RandomSel picks c distinct random nodes.
	RandomSel Strategy = "random"
)

// Options configures hint construction.
type Options struct {
	C        int      // number of landmarks (paper: 50..800, default 200)
	Bits     int      // quantization bits b (paper default 12)
	Xi       float64  // compression threshold ξ (paper default 50.0)
	Strategy Strategy // landmark selection strategy
	Seed     int64    // seed for RandomSel and the Farthest starting point

	// Fixed pins the landmark set, bypassing Strategy/Seed selection. The
	// incremental update pipeline rebuilds hints against the original
	// placement (selection is a placement choice, re-made only on a full
	// re-outsource), and cross-validation rebuilds use it to reproduce an
	// updated owner's hints byte for byte.
	Fixed []graph.NodeID

	// FixedLambda pins the quantization step instead of deriving it from
	// the observed Dmax. λ is a public parameter bound into the root
	// signature, and deriving it per build makes every payload ripple
	// whenever an update stretches the longest landmark distance — so the
	// update pipeline pins the outsource-time λ. Distances beyond the
	// pinned scale saturate at the top unit, which only loosens lower
	// bounds (Lemma 3 keeps holding); zero derives λ as usual.
	FixedLambda float64
}

// Validate checks option ranges.
func (o Options) Validate() error {
	if o.C < 1 {
		return fmt.Errorf("landmark: c = %d must be positive", o.C)
	}
	if o.Bits < 1 || o.Bits > 30 {
		return fmt.Errorf("landmark: bits = %d out of range [1, 30]", o.Bits)
	}
	if o.Xi < 0 || math.IsNaN(o.Xi) {
		return fmt.Errorf("landmark: ξ = %v must be non-negative", o.Xi)
	}
	if o.FixedLambda < 0 || math.IsNaN(o.FixedLambda) || math.IsInf(o.FixedLambda, 0) {
		return fmt.Errorf("landmark: pinned λ = %v must be a non-negative finite value", o.FixedLambda)
	}
	switch o.Strategy {
	case Farthest, RandomSel:
	default:
		return fmt.Errorf("landmark: unknown strategy %q", o.Strategy)
	}
	return nil
}

// Hints is the owner-computed LDM hint set for a graph.
type Hints struct {
	Landmarks []graph.NodeID // the chosen landmarks s_1..s_c
	Bits      int            // quantization bits b
	Lambda    float64        // quantization step λ
	Dmax      float64        // maximum landmark distance observed

	// Dists[i] is landmark i's exact distance row — the Dijkstra output the
	// quantized units derive from. Retained owner-side so an edge-weight
	// update only re-runs the rows its probe marks dirty; everything below
	// (Dmax, λ, Units, compression) is deterministically re-derived.
	Dists [][]float64

	// Units[v][i] is the quantized distance unit of node v to landmark i:
	// distb(s_i, v) = Lambda * Units[v][i]. Retained for every node so the
	// provider can serve any query; clients only ever see packed payloads.
	Units [][]uint32

	// Ref[v] is the reference node v.θ (Ref[v] == v for representatives and
	// uncompressed nodes); Eps[v] is the compression error v.ε in λ units.
	Ref []graph.NodeID
	Eps []uint32
}

// Stats reports what construction did, for experiment logging.
type Stats struct {
	Compressed   int // nodes represented by a reference
	Uncompressed int // nodes carrying their own vector
}

// Build computes the full LDM hint set: select landmarks, compute distance
// vectors (c Dijkstra runs), quantize (Eq. 5), compress (ξ-greedy).
//
// Known-upfront landmark sets (RandomSel, Options.Fixed) fan their Dijkstra
// runs across GOMAXPROCS workers on pooled workspaces; Farthest selection
// is inherently sequential (each pick depends on the previous row's
// distances), so only its derivation stages parallelize. Either way the
// resulting hints are byte-identical to a single-threaded build.
func Build(g *graph.Graph, opts Options) (*Hints, Stats, error) {
	var stats Stats
	if err := opts.Validate(); err != nil {
		return nil, stats, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, stats, fmt.Errorf("landmark: empty graph")
	}

	view := g.Freeze()
	var landmarks []graph.NodeID
	var dists [][]float64
	if len(opts.Fixed) > 0 {
		for _, l := range opts.Fixed {
			if l < 0 || int(l) >= n {
				return nil, stats, fmt.Errorf("landmark: fixed landmark %d out of range [0, %d)", l, n)
			}
		}
		landmarks = append([]graph.NodeID(nil), opts.Fixed...)
		dists = parallelRows(view, landmarks)
	} else {
		c := opts.C
		if c > n {
			c = n
		}
		landmarks, dists = selectLandmarks(view, c, opts.Strategy, opts.Seed)
	}
	h, stats := FromRows(landmarks, dists, opts)
	return h, stats, nil
}

// FromRows derives the complete hint set from a landmark placement and its
// exact distance rows: Dmax, λ, quantized units (Eq. 5, parallel across
// nodes) and ξ-compression. It is the deterministic tail of Build, shared
// with the incremental update pipeline, which re-runs only dirty rows and
// re-derives the rest. dists is retained, not copied.
func FromRows(landmarks []graph.NodeID, dists [][]float64, opts Options) (*Hints, Stats) {
	c := len(landmarks)
	n := 0
	if c > 0 {
		n = len(dists[0])
	}

	// Dmax over all finite landmark distances.
	dmax := 0.0
	for _, row := range dists {
		for _, d := range row {
			if d != sp.Unreachable && d > dmax {
				dmax = d
			}
		}
	}
	lambda := opts.FixedLambda
	if lambda == 0 {
		lambda = dmax / float64((uint64(1)<<opts.Bits)-1)
	}
	if lambda == 0 {
		lambda = 1 // degenerate single-point graphs
	}

	h := &Hints{
		Landmarks: landmarks,
		Bits:      opts.Bits,
		Lambda:    lambda,
		Dmax:      dmax,
		Dists:     dists,
		Units:     make([][]uint32, n),
		Ref:       make([]graph.NodeID, n),
		Eps:       make([]uint32, n),
	}
	maxUnit := uint32((uint64(1) << opts.Bits) - 1)
	par.Chunks(n, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			row := make([]uint32, c)
			for i := 0; i < c; i++ {
				d := dists[i][v]
				if d == sp.Unreachable {
					row[i] = maxUnit // unreachable saturates the scale
					continue
				}
				u := uint32(math.Round(d / lambda))
				if u > maxUnit {
					u = maxUnit
				}
				row[i] = u
			}
			h.Units[v] = row
			h.Ref[v] = graph.NodeID(v)
		}
	})

	stats := h.compress(opts.Xi)
	return h, stats
}

// QuantizationUnchanged reports whether quantizing dists under h's
// (pinned) λ reproduces h's units exactly — the common outcome of a small
// re-weighting, where distances move by less than half a quantization
// step. When true, the caller can reuse h's derived state (units,
// compression, payloads) wholesale and only swap the exact rows.
func (h *Hints) QuantizationUnchanged(dists [][]float64) bool {
	maxUnit := uint32((uint64(1) << h.Bits) - 1)
	n := len(h.Units)
	var diff atomic.Bool // workers only ever set; reads race-free
	par.Chunks(n, 0, func(lo, hi int) {
		for v := lo; v < hi && !diff.Load(); v++ {
			row := h.Units[v]
			for i := range row {
				d := dists[i][v]
				u := maxUnit
				if d != sp.Unreachable {
					if u = uint32(math.Round(d / h.Lambda)); u > maxUnit {
						u = maxUnit
					}
				}
				if u != row[i] {
					diff.Store(true)
					return
				}
			}
		}
	})
	return !diff.Load()
}

// WithRows returns hints sharing every derived structure with h but
// carrying the given exact rows — valid only when QuantizationUnchanged
// held for them.
func (h *Hints) WithRows(dists [][]float64) *Hints {
	nh := *h
	nh.Dists = dists
	return &nh
}

// parallelRows computes every landmark's full distance row concurrently,
// one pooled workspace per worker. Rows are independent, so the output
// matches a sequential run bit for bit.
func parallelRows(g graph.View, landmarks []graph.NodeID) [][]float64 {
	dists := make([][]float64, len(landmarks))
	par.Work(len(landmarks), func(i int) {
		w := sp.AcquireWorkspace(g.NumNodes())
		defer sp.ReleaseWorkspace(w)
		dists[i] = w.DijkstraRow(g, landmarks[i], nil)
	})
	return dists
}

// selectLandmarks returns c landmarks and their exact distance vectors.
func selectLandmarks(g graph.View, c int, strat Strategy, seed int64) ([]graph.NodeID, [][]float64) {
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(seed))
	landmarks := make([]graph.NodeID, 0, c)

	switch strat {
	case RandomSel:
		// Partial Fisher–Yates over a virtual identity array: only the c
		// displaced slots live in the map, so selection costs O(c) extra
		// memory instead of rand.Perm's O(n) — the difference between a
		// hiccup and an allocation spike on million-node graphs.
		moved := make(map[int]int, c)
		for i := 0; i < c; i++ {
			j := i + rng.Intn(n-i)
			vj, ok := moved[j]
			if !ok {
				vj = j
			}
			if vi, ok := moved[i]; ok {
				moved[j] = vi
			} else {
				moved[j] = i
			}
			landmarks = append(landmarks, graph.NodeID(vj))
		}
		return landmarks, parallelRows(g, landmarks)
	default: // Farthest
		dists := make([][]float64, 0, c)
		w := sp.AcquireWorkspace(n)
		defer sp.ReleaseWorkspace(w)
		cur := graph.NodeID(rng.Intn(n))
		minDist := make([]float64, n)
		for i := range minDist {
			minDist[i] = math.MaxFloat64
		}
		for len(landmarks) < c {
			landmarks = append(landmarks, cur)
			row := w.DijkstraRow(g, cur, nil)
			dists = append(dists, row)
			var next graph.NodeID
			far := -1.0
			for v := 0; v < n; v++ {
				d := row[v]
				if d == sp.Unreachable {
					continue // keep landmarks inside the component
				}
				if d < minDist[v] {
					minDist[v] = d
				}
				if minDist[v] > far {
					far = minDist[v]
					next = graph.NodeID(v)
				}
			}
			if far <= 0 {
				break // all nodes are landmarks already
			}
			cur = next
		}
		return landmarks, dists
	}
}

// C returns the number of landmarks.
func (h *Hints) C() int { return len(h.Landmarks) }

// unitDiff returns ε(u, v) in λ units: max_i |distb(s_i,u) − distb(s_i,v)|/λ.
func (h *Hints) unitDiff(u, v graph.NodeID) uint32 {
	var m uint32
	ru, rv := h.Units[u], h.Units[v]
	for i := range ru {
		var d uint32
		if ru[i] > rv[i] {
			d = ru[i] - rv[i]
		} else {
			d = rv[i] - ru[i]
		}
		if d > m {
			m = d
		}
	}
	return m
}

// LooseLB returns distLB^loose(u, v) of Eq. 6, from the quantized vectors
// (ignoring compression). Lemma 3 guarantees LooseLB ≤ distLB ≤ dist.
func (h *Hints) LooseLB(u, v graph.NodeID) float64 {
	d := h.unitDiff(u, v)
	if d <= 1 {
		return 0
	}
	return float64(d-1) * h.Lambda
}

// LB returns the compressed lower bound of Lemma 4, the bound both provider
// and client use:
//
//	max{0, distLB^loose(u.θ, v.θ) − (u.ε + v.ε)·λ}
//
// For uncompressed nodes θ = self and ε = 0, so LB degrades gracefully to
// LooseLB.
func (h *Hints) LB(u, v graph.NodeID) float64 {
	base := h.LooseLB(h.Ref[u], h.Ref[v])
	penalty := float64(h.Eps[u]+h.Eps[v]) * h.Lambda
	if base <= penalty {
		return 0
	}
	return base - penalty
}

// compress runs the greedy ξ-compression: repeatedly pick the representative
// covering the most still-uncompressed nodes within quantized difference ξ,
// until no representative covers anyone but itself.
//
// Exactly evaluating every candidate each round is O(rounds·n²·c); to stay
// practical on road networks the candidate scan works on a Hilbert-ordered
// sweep window (spatially close nodes have similar vectors), which preserves
// the Lemma 4 invariants exactly — ε values are always computed, never
// estimated — and only affects how close coverage gets to the optimum.
func (h *Hints) compress(xi float64) Stats {
	n := len(h.Units)
	// ξ in λ units, floored: ε(v, rep) ≤ ξ must hold in real distance, and
	// ε_units·λ ≤ ξ ⇔ ε_units ≤ ξ/λ.
	xiUnits := uint32(math.Floor(xi / h.Lambda))

	var stats Stats
	if xiUnits == 0 || n == 1 {
		stats.Uncompressed = n
		return stats
	}

	// Hilbert-style sweep: order nodes by their first two vector entries
	// (cheap proxy for vector similarity), then greedily grow runs around a
	// representative.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if len(h.Units[0]) >= 1 {
		sortByVector(order, h.Units)
	}
	assigned := make([]bool, n)
	for start := 0; start < n; start++ {
		v := order[start]
		if assigned[v] {
			continue
		}
		// v becomes a representative; absorb subsequent unassigned nodes in
		// the sweep while they are within ξ.
		assigned[v] = true
		h.Ref[v] = graph.NodeID(v)
		h.Eps[v] = 0
		stats.Uncompressed++
		for j := start + 1; j < n; j++ {
			w := order[j]
			if assigned[w] {
				continue
			}
			eps := h.unitDiff(graph.NodeID(w), graph.NodeID(v))
			if eps > xiUnits {
				// The sweep is sorted by vector proximity; once the primary
				// coordinate alone exceeds ξ no later node can qualify.
				if primaryGap(h.Units[order[j]], h.Units[v]) > xiUnits {
					break
				}
				continue
			}
			assigned[w] = true
			h.Ref[w] = graph.NodeID(v)
			h.Eps[w] = eps
			stats.Compressed++
		}
	}
	return stats
}

func primaryGap(a, b []uint32) uint32 {
	if len(a) == 0 {
		return 0
	}
	if a[0] > b[0] {
		return a[0] - b[0]
	}
	return b[0] - a[0]
}

// sortByVector orders node indices by (Units[0], Units[1], ...) ascending —
// an in-place radix-free comparison sort on the first few coordinates.
func sortByVector(order []int, units [][]uint32) {
	lessVec := func(a, b []uint32) bool {
		limit := len(a)
		if limit > 4 {
			limit = 4 // first coordinates dominate similarity
		}
		for i := 0; i < limit; i++ {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	quicksortBy(order, func(i, j int) bool { return lessVec(units[i], units[j]) })
}

func quicksortBy(a []int, less func(i, j int) bool) {
	if len(a) < 2 {
		return
	}
	mid := a[len(a)/2]
	lo, eq, hi := 0, 0, len(a)
	for eq < hi {
		switch {
		case less(a[eq], mid):
			a[lo], a[eq] = a[eq], a[lo]
			lo++
			eq++
		case less(mid, a[eq]):
			hi--
			a[eq], a[hi] = a[hi], a[eq]
		default:
			eq++
		}
	}
	quicksortBy(a[:lo], less)
	quicksortBy(a[hi:], less)
}
