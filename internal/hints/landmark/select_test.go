package landmark

import (
	"math/rand"
	"testing"

	"github.com/authhints/spv/internal/graph"
)

// TestPartialFisherYatesSelection pins the O(c)-memory random sampler:
// deterministic per seed, distinct, in range — including the degenerate
// c = n case, where it must produce a full permutation.
func TestPartialFisherYatesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomRoadGraph(rng, 60)
	for _, c := range []int{1, 7, 59, 60} {
		o := defaultOpts()
		o.Strategy = RandomSel
		o.C = c
		h1, _, err := Build(g, o)
		if err != nil {
			t.Fatal(err)
		}
		h2, _, err := Build(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(h1.Landmarks) != c {
			t.Fatalf("c=%d: selected %d landmarks", c, len(h1.Landmarks))
		}
		seen := map[graph.NodeID]bool{}
		for i, l := range h1.Landmarks {
			if l < 0 || int(l) >= g.NumNodes() {
				t.Fatalf("c=%d: landmark %d out of range", c, l)
			}
			if seen[l] {
				t.Fatalf("c=%d: duplicate landmark %d", c, l)
			}
			seen[l] = true
			if h2.Landmarks[i] != l {
				t.Fatalf("c=%d: selection not deterministic per seed", c)
			}
		}
	}
}

// TestFixedLandmarks pins the placement-pinning path the incremental
// update pipeline and its cross-validation rebuilds rely on.
func TestFixedLandmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := randomRoadGraph(rng, 50)
	fixed := []graph.NodeID{3, 41, 7, 19}
	o := defaultOpts()
	o.Fixed = fixed
	h, _, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Landmarks) != len(fixed) {
		t.Fatalf("got %d landmarks, want %d", len(h.Landmarks), len(fixed))
	}
	for i, l := range h.Landmarks {
		if l != fixed[i] {
			t.Fatalf("landmark %d = %d, want %d (order must be preserved)", i, l, fixed[i])
		}
	}
	if h.Dists == nil || len(h.Dists) != len(fixed) {
		t.Fatal("exact distance rows not retained")
	}
	o.Fixed = []graph.NodeID{graph.NodeID(g.NumNodes())}
	if _, _, err := Build(g, o); err == nil {
		t.Error("out-of-range fixed landmark accepted")
	}
}
