package landmark

import (
	"encoding/binary"
	"fmt"

	"github.com/authhints/spv/internal/graph"
)

// Payload is the per-node authenticated hint embedded in the extended-tuple
// Φ(v) (Eq. 4): either the node's own quantized landmark vector (b bits per
// landmark, packed), or a reference node plus compression error for
// compressed nodes. The payload bytes are covered by the node's digest in
// the network Merkle tree, so clients can trust whichever form they receive.
type Payload struct {
	HasVec bool
	Units  []uint32     // quantized units, present iff HasVec
	Ref    graph.NodeID // reference node v.θ, present iff !HasVec
	Eps    uint32       // compression error v.ε in λ units, iff !HasVec
}

// payload wire tags.
const (
	tagVector     = 0x01
	tagCompressed = 0x02
)

// PayloadOf extracts node v's payload from the hint set.
func (h *Hints) PayloadOf(v graph.NodeID) Payload {
	if h.Ref[v] == v {
		return Payload{HasVec: true, Units: h.Units[v]}
	}
	return Payload{Ref: h.Ref[v], Eps: h.Eps[v]}
}

// VectorPayloadSize returns the wire size of a vector payload for c
// landmarks at b bits: 1 tag byte plus the packed bitstream. This is the
// quantization win the paper's §V-A is after — c=200, b=12 costs 301 bytes
// instead of 1,601 for raw float64 vectors.
func VectorPayloadSize(c, bits int) int { return 1 + (c*bits+7)/8 }

// CompressedPayloadSize returns the wire size of a compressed payload:
// 1 tag byte + 4-byte reference ID + 4-byte ε.
const CompressedPayloadSize = 1 + 4 + 4

// EncodedSize returns the payload's wire size given the hint parameters.
func (p Payload) EncodedSize(c, bits int) int {
	if p.HasVec {
		return VectorPayloadSize(c, bits)
	}
	return CompressedPayloadSize
}

// AppendBinary encodes the payload.
func (p Payload) AppendBinary(bits int, buf []byte) []byte {
	if p.HasVec {
		buf = append(buf, tagVector)
		return appendPacked(buf, p.Units, bits)
	}
	buf = append(buf, tagCompressed)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Ref))
	buf = binary.BigEndian.AppendUint32(buf, p.Eps)
	return buf
}

// DecodePayload parses a payload for c landmarks at b bits, returning the
// payload and the number of bytes consumed.
func DecodePayload(buf []byte, c, bits int) (Payload, int, error) {
	if len(buf) < 1 {
		return Payload{}, 0, fmt.Errorf("landmark: payload truncated")
	}
	switch buf[0] {
	case tagVector:
		need := 1 + (c*bits+7)/8
		if len(buf) < need {
			return Payload{}, 0, fmt.Errorf("landmark: vector payload truncated (%d of %d bytes)", len(buf), need)
		}
		units, err := unpack(buf[1:need], c, bits)
		if err != nil {
			return Payload{}, 0, err
		}
		return Payload{HasVec: true, Units: units}, need, nil
	case tagCompressed:
		if len(buf) < CompressedPayloadSize {
			return Payload{}, 0, fmt.Errorf("landmark: compressed payload truncated")
		}
		return Payload{
			Ref: graph.NodeID(binary.BigEndian.Uint32(buf[1:])),
			Eps: binary.BigEndian.Uint32(buf[5:]),
		}, CompressedPayloadSize, nil
	default:
		return Payload{}, 0, fmt.Errorf("landmark: unknown payload tag %#x", buf[0])
	}
}

// appendPacked packs each unit into bits bits, big-endian bit order.
func appendPacked(buf []byte, units []uint32, bits int) []byte {
	var acc uint64
	var nbits int
	for _, u := range units {
		acc = acc<<bits | uint64(u&((1<<bits)-1))
		nbits += bits
		for nbits >= 8 {
			nbits -= 8
			buf = append(buf, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		buf = append(buf, byte(acc<<(8-nbits)))
	}
	return buf
}

// unpack reverses appendPacked for c units of the given width.
func unpack(buf []byte, c, bits int) ([]uint32, error) {
	need := (c*bits + 7) / 8
	if len(buf) < need {
		return nil, fmt.Errorf("landmark: packed stream has %d bytes, need %d", len(buf), need)
	}
	units := make([]uint32, c)
	var acc uint64
	var nbits, pos int
	for i := 0; i < c; i++ {
		for nbits < bits {
			acc = acc<<8 | uint64(buf[pos])
			pos++
			nbits += 8
		}
		nbits -= bits
		units[i] = uint32(acc>>nbits) & ((1 << bits) - 1)
	}
	return units, nil
}

// Params are the global hint parameters a client needs to interpret
// payloads. They are covered by the owner's root signature (the core layer
// signs root ◦ params), so a provider cannot forge them.
type Params struct {
	C      int
	Bits   int
	Lambda float64
}

// Resolver evaluates Lemma 4 lower bounds on the client side from a set of
// authenticated payloads (one per tuple in the proof).
type Resolver struct {
	Params
	payloads map[graph.NodeID]Payload
}

// NewResolver creates an empty resolver for the given parameters.
func NewResolver(p Params) *Resolver {
	return &Resolver{Params: p, payloads: make(map[graph.NodeID]Payload)}
}

// Add registers node v's payload.
func (r *Resolver) Add(v graph.NodeID, p Payload) { r.payloads[v] = p }

// Reset empties the resolver and re-arms it for the given parameters,
// keeping its map storage. Batch verification resolves one proof after
// another on a single pooled resolver instead of allocating one per proof.
func (r *Resolver) Reset(p Params) {
	r.Params = p
	clear(r.payloads)
}

// Has reports whether v's payload is registered.
func (r *Resolver) Has(v graph.NodeID) bool {
	_, ok := r.payloads[v]
	return ok
}

// vector resolves the quantized vector and ε for node v, following the
// reference indirection at most one level (representatives always carry
// their own vectors).
func (r *Resolver) vector(v graph.NodeID) ([]uint32, uint32, error) {
	p, ok := r.payloads[v]
	if !ok {
		return nil, 0, fmt.Errorf("landmark: no payload for node %d", v)
	}
	if p.HasVec {
		return p.Units, 0, nil
	}
	rp, ok := r.payloads[p.Ref]
	if !ok {
		return nil, 0, fmt.Errorf("landmark: node %d references %d whose payload is missing", v, p.Ref)
	}
	if !rp.HasVec {
		return nil, 0, fmt.Errorf("landmark: reference node %d of %d is itself compressed", p.Ref, v)
	}
	return rp.Units, p.Eps, nil
}

// LB computes the Lemma 4 lower bound between u and v:
//
//	max{0, distLB^loose(u.θ, v.θ) − (u.ε + v.ε)·λ}
//
// It fails if a needed payload is absent — the client treats that as an
// invalid proof.
func (r *Resolver) LB(u, v graph.NodeID) (float64, error) {
	vu, eu, err := r.vector(u)
	if err != nil {
		return 0, err
	}
	vv, ev, err := r.vector(v)
	if err != nil {
		return 0, err
	}
	if len(vu) != len(vv) {
		return 0, fmt.Errorf("landmark: vector length mismatch (%d vs %d)", len(vu), len(vv))
	}
	var maxDiff uint32
	for i := range vu {
		var d uint32
		if vu[i] > vv[i] {
			d = vu[i] - vv[i]
		} else {
			d = vv[i] - vu[i]
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	// distLB^loose = (maxDiff − 1)·λ if maxDiff > 1 else 0 (Eq. 6);
	// subtract the compression penalty (Lemma 4), clamp at zero.
	if maxDiff <= 1 {
		return 0, nil
	}
	loose := float64(maxDiff-1) * r.Lambda
	penalty := float64(eu+ev) * r.Lambda
	if loose <= penalty {
		return 0, nil
	}
	return loose - penalty, nil
}
