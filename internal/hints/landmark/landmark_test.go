package landmark

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/authhints/spv/internal/graph"
	"github.com/authhints/spv/internal/sp"
)

func defaultOpts() Options {
	return Options{C: 8, Bits: 12, Xi: 50, Strategy: Farthest, Seed: 1}
}

// randomRoadGraph builds a connected random graph with spatial coordinates.
func randomRoadGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*10000, rng.Float64()*10000)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(u, v, g.Euclid(u, v)+1)
	}
	for k := 0; k < n/3; k++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, g.Euclid(u, v)+1)
		}
	}
	return g
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{C: 0, Bits: 12, Xi: 0, Strategy: Farthest},
		{C: 5, Bits: 0, Xi: 0, Strategy: Farthest},
		{C: 5, Bits: 31, Xi: 0, Strategy: Farthest},
		{C: 5, Bits: 12, Xi: -1, Strategy: Farthest},
		{C: 5, Bits: 12, Xi: math.NaN(), Strategy: Farthest},
		{C: 5, Bits: 12, Xi: 0, Strategy: "magic"},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: bad options accepted: %+v", i, o)
		}
	}
	if err := defaultOpts().Validate(); err != nil {
		t.Errorf("good options rejected: %v", err)
	}
}

func TestBuildBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomRoadGraph(rng, 120)
	h, stats, err := Build(g, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if h.C() != 8 {
		t.Errorf("C = %d, want 8", h.C())
	}
	if stats.Compressed+stats.Uncompressed != g.NumNodes() {
		t.Errorf("stats %+v do not cover %d nodes", stats, g.NumNodes())
	}
	seen := map[graph.NodeID]bool{}
	for _, l := range h.Landmarks {
		if seen[l] {
			t.Errorf("duplicate landmark %d", l)
		}
		seen[l] = true
	}
	if h.Lambda <= 0 {
		t.Errorf("lambda = %v", h.Lambda)
	}
	maxUnit := uint32((1 << h.Bits) - 1)
	for v, row := range h.Units {
		if len(row) != h.C() {
			t.Fatalf("node %d has %d units", v, len(row))
		}
		for _, u := range row {
			if u > maxUnit {
				t.Fatalf("node %d unit %d exceeds %d", v, u, maxUnit)
			}
		}
	}
}

func TestBuildClampsLandmarkCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomRoadGraph(rng, 6)
	o := defaultOpts()
	o.C = 100
	h, _, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if h.C() > 6 {
		t.Errorf("C = %d exceeds node count", h.C())
	}
}

// TestLemma3QuantizedAdmissibility: LooseLB(u,v) ≤ dist(u,v) against exact
// Dijkstra distances, the chained Theorem 1 + Lemma 3 guarantee.
func TestLemma3QuantizedAdmissibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomRoadGraph(rng, 10+rng.Intn(70))
		o := defaultOpts()
		o.Bits = 4 + rng.Intn(12)
		o.Seed = seed
		h, _, err := Build(g, o)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		tr := sp.Dijkstra(g, src)
		for v := 0; v < g.NumNodes(); v++ {
			lb := h.LooseLB(src, graph.NodeID(v))
			if lb > tr.Dist[v]+1e-9 {
				t.Logf("seed %d: LooseLB(%d,%d) = %v > dist %v", seed, src, v, lb, tr.Dist[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLemma4CompressedAdmissibility: the reference-node bound never exceeds
// the loose bound nor the true distance, for any ξ.
func TestLemma4CompressedAdmissibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomRoadGraph(rng, 10+rng.Intn(60))
		o := defaultOpts()
		o.Xi = rng.Float64() * 400
		o.Seed = seed
		h, _, err := Build(g, o)
		if err != nil {
			return false
		}
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		tr := sp.Dijkstra(g, src)
		for v := 0; v < g.NumNodes(); v++ {
			lb := h.LB(src, graph.NodeID(v))
			loose := h.LooseLB(src, graph.NodeID(v))
			if lb > tr.Dist[v]+1e-9 {
				t.Logf("seed %d: LB(%d,%d) = %v > dist %v", seed, src, v, lb, tr.Dist[v])
				return false
			}
			if lb < 0 {
				t.Logf("seed %d: negative LB", seed)
				return false
			}
			_ = loose // loose vs lb relationship checked below on refs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCompressionInvariants: every compressed node's ε is the true quantized
// difference to its representative, bounded by ξ, and every representative
// carries its own vector.
func TestCompressionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomRoadGraph(rng, 200)
	o := defaultOpts()
	o.Xi = 300
	h, stats, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compressed == 0 {
		t.Fatal("expected some compression with generous ξ")
	}
	xiUnits := uint32(math.Floor(o.Xi / h.Lambda))
	for v := 0; v < g.NumNodes(); v++ {
		ref := h.Ref[v]
		if ref == graph.NodeID(v) {
			if h.Eps[v] != 0 {
				t.Errorf("representative %d has ε = %d", v, h.Eps[v])
			}
			continue
		}
		if h.Ref[ref] != ref {
			t.Errorf("reference %d of %d is itself compressed", ref, v)
		}
		if got := h.unitDiff(graph.NodeID(v), ref); got != h.Eps[v] {
			t.Errorf("node %d: stored ε %d, actual %d", v, h.Eps[v], got)
		}
		if h.Eps[v] > xiUnits {
			t.Errorf("node %d: ε %d exceeds ξ %d units", v, h.Eps[v], xiUnits)
		}
	}
}

func TestCompressionReducesWithTighterXi(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomRoadGraph(rng, 300)
	prevCompressed := math.MaxInt
	for _, xi := range []float64{800, 200, 50, 0} {
		o := defaultOpts()
		o.Xi = xi
		_, stats, err := Build(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Compressed > prevCompressed {
			t.Errorf("ξ=%v compressed %d nodes, more than looser threshold %d", xi, stats.Compressed, prevCompressed)
		}
		prevCompressed = stats.Compressed
	}
	o := defaultOpts()
	o.Xi = 0
	_, stats, _ := Build(g, o)
	if stats.Compressed != 0 {
		t.Errorf("ξ=0 compressed %d nodes, want 0", stats.Compressed)
	}
}

// TestMoreLandmarksTightenBounds reproduces the Fig 12a mechanism: average
// lower bounds must not get worse as c grows (same seed, same graph).
func TestMoreLandmarksTightenBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomRoadGraph(rng, 150)
	pairs := make([][2]graph.NodeID, 60)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(150)), graph.NodeID(rng.Intn(150))}
	}
	avgLB := func(c int) float64 {
		o := defaultOpts()
		o.C = c
		o.Xi = 0 // isolate the landmark-count effect
		h, _, err := Build(g, o)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, p := range pairs {
			total += h.LooseLB(p[0], p[1])
		}
		return total / float64(len(pairs))
	}
	lb4, lb32 := avgLB(4), avgLB(32)
	if lb32 < lb4*0.95 {
		t.Errorf("c=32 average LB %v worse than c=4 %v", lb32, lb4)
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(30)
		c := 1 + rng.Intn(64)
		units := make([]uint32, c)
		for i := range units {
			units[i] = rng.Uint32() & ((1 << bits) - 1)
		}
		packed := appendPacked(nil, units, bits)
		if len(packed) != (c*bits+7)/8 {
			t.Logf("packed %d bytes, want %d", len(packed), (c*bits+7)/8)
			return false
		}
		got, err := unpack(packed, c, bits)
		if err != nil {
			return false
		}
		for i := range units {
			if got[i] != units[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomRoadGraph(rng, 80)
	o := defaultOpts()
	o.Xi = 400
	h, stats, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compressed == 0 {
		t.Fatal("need compressed nodes for this test")
	}
	for v := 0; v < g.NumNodes(); v++ {
		p := h.PayloadOf(graph.NodeID(v))
		enc := p.AppendBinary(h.Bits, nil)
		if len(enc) != p.EncodedSize(h.C(), h.Bits) {
			t.Errorf("node %d: encoded %d bytes, EncodedSize %d", v, len(enc), p.EncodedSize(h.C(), h.Bits))
		}
		dec, n, err := DecodePayload(enc, h.C(), h.Bits)
		if err != nil || n != len(enc) {
			t.Fatalf("node %d: decode %v (%d of %d bytes)", v, err, n, len(enc))
		}
		if dec.HasVec != p.HasVec || dec.Ref != p.Ref || dec.Eps != p.Eps {
			t.Fatalf("node %d: payload mismatch %+v vs %+v", v, dec, p)
		}
		if p.HasVec {
			for i := range p.Units {
				if dec.Units[i] != p.Units[i] {
					t.Fatalf("node %d unit %d mismatch", v, i)
				}
			}
		}
	}
}

func TestDecodePayloadRejectsCorrupt(t *testing.T) {
	if _, _, err := DecodePayload(nil, 4, 12); err == nil {
		t.Error("empty payload decoded")
	}
	if _, _, err := DecodePayload([]byte{0x7f, 1, 2}, 4, 12); err == nil {
		t.Error("unknown tag decoded")
	}
	if _, _, err := DecodePayload([]byte{tagVector, 1}, 8, 12); err == nil {
		t.Error("truncated vector decoded")
	}
	if _, _, err := DecodePayload([]byte{tagCompressed, 1, 2}, 8, 12); err == nil {
		t.Error("truncated compressed payload decoded")
	}
}

// TestResolverMatchesHints: the client-side Resolver over payloads computes
// exactly the provider-side LB.
func TestResolverMatchesHints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomRoadGraph(rng, 100)
	o := defaultOpts()
	o.Xi = 250
	h, _, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResolver(Params{C: h.C(), Bits: h.Bits, Lambda: h.Lambda})
	for v := 0; v < g.NumNodes(); v++ {
		r.Add(graph.NodeID(v), h.PayloadOf(graph.NodeID(v)))
	}
	for trial := 0; trial < 300; trial++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		got, err := r.LB(u, v)
		if err != nil {
			t.Fatalf("LB(%d,%d): %v", u, v, err)
		}
		want := h.LB(u, v)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("LB(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestResolverMissingPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomRoadGraph(rng, 50)
	o := defaultOpts()
	o.Xi = 3000 // generous: small scattered graphs need a loose threshold
	h, stats, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compressed == 0 {
		t.Fatal("need compression")
	}
	// Find a compressed node.
	var comp graph.NodeID = -1
	for v := 0; v < g.NumNodes(); v++ {
		if h.Ref[v] != graph.NodeID(v) {
			comp = graph.NodeID(v)
			break
		}
	}
	r := NewResolver(Params{C: h.C(), Bits: h.Bits, Lambda: h.Lambda})
	if _, err := r.LB(comp, comp); err == nil {
		t.Error("LB with no payloads succeeded")
	}
	r.Add(comp, h.PayloadOf(comp))
	if !r.Has(comp) || r.Has(graph.NodeID(9999)) {
		t.Error("Has() wrong")
	}
	// Reference payload still missing.
	if _, err := r.LB(comp, comp); err == nil {
		t.Error("LB with missing reference payload succeeded")
	}
	r.Add(h.Ref[comp], h.PayloadOf(h.Ref[comp]))
	if _, err := r.LB(comp, comp); err != nil {
		t.Errorf("LB with full payloads failed: %v", err)
	}
}

func TestRandomSelectionStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomRoadGraph(rng, 90)
	o := defaultOpts()
	o.Strategy = RandomSel
	h, _, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if h.C() != o.C {
		t.Errorf("C = %d, want %d", h.C(), o.C)
	}
	seen := map[graph.NodeID]bool{}
	for _, l := range h.Landmarks {
		if seen[l] {
			t.Error("duplicate landmark under random selection")
		}
		seen[l] = true
	}
}

// TestFarthestSpreadsLandmarks: farthest-point landmarks should be pairwise
// farther apart on average than random ones.
func TestFarthestSpreadsLandmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomRoadGraph(rng, 250)
	spread := func(strategy Strategy) float64 {
		o := defaultOpts()
		o.Strategy = strategy
		o.C = 6
		h, _, err := Build(g, o)
		if err != nil {
			t.Fatal(err)
		}
		total, count := 0.0, 0
		for i, a := range h.Landmarks {
			tr := sp.Dijkstra(g, a)
			for _, b := range h.Landmarks[i+1:] {
				total += tr.Dist[b]
				count++
			}
		}
		return total / float64(count)
	}
	if f, r := spread(Farthest), spread(RandomSel); f < r {
		t.Errorf("farthest spread %v below random %v", f, r)
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, _, err := Build(graph.New(0), defaultOpts()); err == nil {
		t.Error("empty graph accepted")
	}
}
