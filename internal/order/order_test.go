package order

import (
	"math"
	"math/rand"
	"testing"

	"github.com/authhints/spv/internal/graph"
)

// gridGraph builds an s×s grid network with unit edge weights: a good
// stand-in for a road network with strong spatial structure.
func gridGraph(s int) *graph.Graph {
	g := graph.New(s * s)
	for r := 0; r < s; r++ {
		for c := 0; c < s; c++ {
			g.AddNode(float64(c)*100, float64(r)*100)
		}
	}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*s + c) }
	for r := 0; r < s; r++ {
		for c := 0; c < s; c++ {
			if c+1 < s {
				g.MustAddEdge(id(r, c), id(r, c+1), 100)
			}
			if r+1 < s {
				g.MustAddEdge(id(r, c), id(r+1, c), 100)
			}
		}
	}
	return g
}

func TestAllMethodsArePermutations(t *testing.T) {
	g := gridGraph(12)
	for _, m := range Methods() {
		o, err := Compute(g, m, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(o.Seq) != g.NumNodes() || len(o.Pos) != g.NumNodes() {
			t.Fatalf("%s: wrong lengths", m)
		}
		for pos, v := range o.Seq {
			if o.Pos[v] != pos {
				t.Fatalf("%s: Pos/Seq inconsistent at %d", m, pos)
			}
		}
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	g := gridGraph(3)
	if _, err := Compute(g, Method("zorder"), 0); err == nil {
		t.Error("unknown method accepted")
	}
	if Method("zorder").Valid() {
		t.Error("zorder reported valid")
	}
	for _, m := range Methods() {
		if !m.Valid() {
			t.Errorf("%s reported invalid", m)
		}
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := Compute(graph.New(0), Hilbert, 0); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := gridGraph(9)
	for _, m := range Methods() {
		a, err := Compute(g, m, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compute(g, m, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Seq {
			if a.Seq[i] != b.Seq[i] {
				t.Fatalf("%s: non-deterministic at %d", m, i)
			}
		}
	}
}

func TestRandomSeedMatters(t *testing.T) {
	g := gridGraph(9)
	a, _ := Compute(g, Random, 1)
	b, _ := Compute(g, Random, 2)
	same := true
	for i := range a.Seq {
		if a.Seq[i] != b.Seq[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical random orderings")
	}
}

func TestBFSOrderStartsAtZeroAndIsLevelMonotone(t *testing.T) {
	g := gridGraph(8)
	o, _ := Compute(g, BFS, 0)
	if o.Seq[0] != 0 {
		t.Errorf("BFS starts at %d, want 0", o.Seq[0])
	}
	// Hop distance from node 0 must be non-decreasing along the sequence.
	hops := bfsHops(g, 0)
	prev := -1
	for _, v := range o.Seq {
		if hops[v] < prev {
			t.Fatalf("BFS order not level-monotone at node %d", v)
		}
		prev = hops[v]
	}
}

func bfsHops(g *graph.Graph, src graph.NodeID) []int {
	h := make([]int, g.NumNodes())
	for i := range h {
		h[i] = -1
	}
	h[src] = 0
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(v) {
			if h[e.To] < 0 {
				h[e.To] = h[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return h
}

func TestDFSParentAdjacency(t *testing.T) {
	// In a DFS order over a connected graph, each node after the first must
	// be adjacent to some earlier node (tree property of DFS forests).
	g := gridGraph(7)
	o, _ := Compute(g, DFS, 0)
	placed := make([]bool, g.NumNodes())
	placed[o.Seq[0]] = true
	for _, v := range o.Seq[1:] {
		ok := false
		for _, e := range g.Neighbors(v) {
			if placed[e.To] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("DFS node %d not adjacent to any earlier node", v)
		}
		placed[v] = true
	}
}

func TestDisconnectedGraphCoverage(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddNode(float64(i), 0)
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(3, 4, 1)
	for _, m := range []Method{BFS, DFS} {
		o, err := Compute(g, m, 0)
		if err != nil {
			t.Fatalf("%s on disconnected graph: %v", m, err)
		}
		if len(o.Seq) != 6 {
			t.Fatalf("%s covered %d of 6 nodes", m, len(o.Seq))
		}
	}
}

// TestSpatialLocalityRanking reproduces the mechanism behind Fig 10: the
// locality-preserving orderings (hbt, kd, dfs) must place spatially close
// nodes much closer in the sequence than rand does.
func TestSpatialLocalityRanking(t *testing.T) {
	g := gridGraph(20)
	spread := func(m Method) float64 {
		o, err := Compute(g, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Average |pos(u) - pos(v)| over all edges.
		total, count := 0.0, 0
		for v := 0; v < g.NumNodes(); v++ {
			for _, e := range g.Neighbors(graph.NodeID(v)) {
				if e.To > graph.NodeID(v) {
					total += math.Abs(float64(o.Pos[v] - o.Pos[e.To]))
					count++
				}
			}
		}
		return total / float64(count)
	}
	randSpread := spread(Random)
	for _, m := range []Method{Hilbert, KD, DFS, BFS} {
		s := spread(m)
		if s >= randSpread {
			t.Errorf("%s spread %v not better than random %v", m, s, randSpread)
		}
	}
	// And the locality-preserving three must beat BFS (the second worst in
	// the paper).
	bfsSpread := spread(BFS)
	for _, m := range []Method{Hilbert, KD, DFS} {
		if s := spread(m); s >= bfsSpread {
			t.Errorf("%s spread %v not better than bfs %v", m, s, bfsSpread)
		}
	}
}

func TestHilbertTieBreakStable(t *testing.T) {
	// Co-located nodes (same Hilbert key) must order by ID.
	g := graph.New(3)
	g.AddNode(5, 5)
	g.AddNode(5, 5)
	g.AddNode(5, 5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	o, err := Compute(g, Hilbert, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range o.Seq {
		if int(v) != i {
			t.Fatalf("co-located nodes not ID-ordered: %v", o.Seq)
		}
	}
}

func TestLargeRandomGraphAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New(500)
	for i := 0; i < 500; i++ {
		g.AddNode(rng.Float64()*10000, rng.Float64()*10000)
	}
	perm := rng.Perm(500)
	for i := 1; i < 500; i++ {
		g.MustAddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1)
	}
	for _, m := range Methods() {
		if _, err := Compute(g, m, 9); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}
