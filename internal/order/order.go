// Package order implements the graph-node orderings used to lay out
// extended-tuples as Merkle tree leaves (paper §III-B). The ordering
// determines how well network proximity is preserved in the tree and hence
// the size of integrity proofs: hbt, kd and dfs preserve locality and yield
// compact proofs; rand is the worst case (Fig 10).
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/authhints/spv/internal/geom"
	"github.com/authhints/spv/internal/graph"
)

// Method names a graph-node ordering.
type Method string

const (
	// Random ordering of nodes.
	Random Method = "rand"
	// Hilbert orders nodes by their position on a Hilbert space-filling
	// curve over the coordinate space.
	Hilbert Method = "hbt"
	// KD orders nodes by kd-tree leaf traversal (spatial partitioning).
	KD Method = "kd"
	// BFS orders nodes by breadth-first traversal of the graph.
	BFS Method = "bfs"
	// DFS orders nodes by depth-first traversal of the graph.
	DFS Method = "dfs"
)

// Methods lists all orderings in the paper's Table II order.
func Methods() []Method { return []Method{BFS, DFS, Hilbert, KD, Random} }

// Valid reports whether m names a known method.
func (m Method) Valid() bool {
	switch m {
	case Random, Hilbert, KD, BFS, DFS:
		return true
	}
	return false
}

// Ordering is a bijection between graph nodes and Merkle leaf positions.
type Ordering struct {
	Method Method
	// Seq[pos] is the node at leaf position pos.
	Seq []graph.NodeID
	// Pos[node] is the leaf position of node.
	Pos []int
}

// Compute derives the ordering of g's nodes under method m. seed feeds the
// Random method only; all other methods are deterministic. Traversal-based
// methods (BFS, DFS) restart from the lowest-ID unvisited node per connected
// component.
func Compute(g *graph.Graph, m Method, seed int64) (*Ordering, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("order: empty graph")
	}
	var seq []graph.NodeID
	switch m {
	case Random:
		rng := rand.New(rand.NewSource(seed))
		seq = make([]graph.NodeID, n)
		for i, p := range rng.Perm(n) {
			seq[i] = graph.NodeID(p)
		}
	case Hilbert:
		seq = hilbertOrder(g)
	case KD:
		seq = kdOrder(g)
	case BFS:
		seq = bfsOrder(g)
	case DFS:
		seq = dfsOrder(g)
	default:
		return nil, fmt.Errorf("order: unknown method %q", m)
	}
	if len(seq) != n {
		return nil, fmt.Errorf("order: %s produced %d positions for %d nodes", m, len(seq), n)
	}
	return FromSeq(m, seq)
}

// FromSeq reconstructs an Ordering from an explicit leaf sequence,
// validating that it is a bijection over [0, len(seq)). Snapshot loading
// uses it to restore the exact outsourcing-time layout without re-running
// (or trusting the determinism of) the ordering computation; Compute
// funnels through it too, so both paths share the validation. The seq
// slice is retained, not copied.
func FromSeq(m Method, seq []graph.NodeID) (*Ordering, error) {
	n := len(seq)
	if n == 0 {
		return nil, fmt.Errorf("order: empty sequence")
	}
	o := &Ordering{Method: m, Seq: seq, Pos: make([]int, n)}
	for i := range o.Pos {
		o.Pos[i] = -1
	}
	for pos, v := range seq {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("order: %s node %d out of range [0, %d)", m, v, n)
		}
		if o.Pos[v] != -1 {
			return nil, fmt.Errorf("order: %s produced duplicate node %d", m, v)
		}
		o.Pos[v] = pos
	}
	for v, pos := range o.Pos {
		if pos == -1 {
			return nil, fmt.Errorf("order: %s omitted node %d", m, v)
		}
	}
	return o, nil
}

func hilbertOrder(g *graph.Graph) []graph.NodeID {
	minX, minY, maxX, maxY := g.Bounds()
	extent := maxX - minX
	if maxY-minY > extent {
		extent = maxY - minY
	}
	type keyed struct {
		key uint64
		v   graph.NodeID
	}
	ks := make([]keyed, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		ks[v] = keyed{geom.HilbertKey(g.X(id), g.Y(id), minX, minY, extent), id}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].v < ks[j].v
	})
	seq := make([]graph.NodeID, len(ks))
	for i, k := range ks {
		seq[i] = k.v
	}
	return seq
}

func kdOrder(g *graph.Graph) []graph.NodeID {
	pts := make([]geom.Point, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		pts[v] = geom.Point{X: g.X(id), Y: g.Y(id), Idx: v}
	}
	idx := geom.KDOrder(pts)
	seq := make([]graph.NodeID, len(idx))
	for i, v := range idx {
		seq[i] = graph.NodeID(v)
	}
	return seq
}

func bfsOrder(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	seq := make([]graph.NodeID, 0, n)
	seen := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = append(queue[:0], graph.NodeID(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			seq = append(seq, v)
			// Visit neighbors in ascending ID order for determinism.
			nbrs := append([]graph.Edge(nil), g.Neighbors(v)...)
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].To < nbrs[j].To })
			for _, e := range nbrs {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	return seq
}

func dfsOrder(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	seq := make([]graph.NodeID, 0, n)
	seen := make([]bool, n)
	var stack []graph.NodeID
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		stack = append(stack[:0], graph.NodeID(start))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			seq = append(seq, v)
			// Push neighbors in descending ID so lowest IDs pop first.
			nbrs := append([]graph.Edge(nil), g.Neighbors(v)...)
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].To > nbrs[j].To })
			for _, e := range nbrs {
				if !seen[e.To] {
					stack = append(stack, e.To)
				}
			}
		}
	}
	return seq
}
