package digest

import (
	"bytes"
	"testing"
)

func TestAlgProperties(t *testing.T) {
	for _, a := range []Alg{SHA1, SHA256} {
		if !a.Valid() {
			t.Errorf("%v reported invalid", a)
		}
		d := a.Sum([]byte("hello"), []byte("world"))
		if len(d) != a.Size() {
			t.Errorf("%v digest has %d bytes, want %d", a, len(d), a.Size())
		}
		// Concatenation semantics: Sum(a, b) == Sum(ab).
		if !bytes.Equal(d, a.Sum([]byte("helloworld"))) {
			t.Errorf("%v Sum not concatenation-consistent", a)
		}
		if bytes.Equal(d, a.Sum([]byte("helloworlD"))) {
			t.Errorf("%v collision on near-identical input", a)
		}
	}
	if SHA1.Size() != 20 || SHA256.Size() != 32 {
		t.Error("unexpected digest sizes")
	}
	if SHA1.String() != "sha1" || SHA256.String() != "sha256" {
		t.Error("unexpected names")
	}
}

func TestInvalidAlg(t *testing.T) {
	bad := Alg(77)
	if bad.Valid() {
		t.Error("alg 77 reported valid")
	}
	defer func() {
		if recover() == nil {
			t.Error("Size() on invalid alg did not panic")
		}
	}()
	_ = bad.Size()
}
