// Package digest provides the one-way hash primitive H(·) shared by every
// authenticated data structure in this repository (network Merkle tree,
// distance Merkle B-trees).
//
// The paper's cost model uses SHA-1 (20-byte digests, §II-A, 2010-era);
// SHA-256 is available for deployments that need a collision-resistant
// hash, at a 12-byte-per-digest proof-size premium.
package digest

import (
	"crypto/sha1"
	"crypto/sha256"
	"fmt"
	"hash"
)

// Alg selects the one-way hash function.
type Alg uint8

const (
	// SHA1 matches the paper's proof-size accounting (20-byte digests).
	SHA1 Alg = iota
	// SHA256 is the modern choice (32-byte digests).
	SHA256
)

// Size returns the digest length in bytes.
func (a Alg) Size() int {
	switch a {
	case SHA1:
		return sha1.Size
	case SHA256:
		return sha256.Size
	default:
		panic(fmt.Sprintf("digest: unknown algorithm %d", a))
	}
}

// New returns a fresh hash.Hash for the algorithm.
func (a Alg) New() hash.Hash {
	switch a {
	case SHA1:
		return sha1.New()
	case SHA256:
		return sha256.New()
	default:
		panic(fmt.Sprintf("digest: unknown algorithm %d", a))
	}
}

// String implements fmt.Stringer.
func (a Alg) String() string {
	switch a {
	case SHA1:
		return "sha1"
	case SHA256:
		return "sha256"
	default:
		return fmt.Sprintf("alg(%d)", a)
	}
}

// Sum returns H(p0 ◦ p1 ◦ ...), the digest of the concatenation of the
// parts, allocating the result.
func (a Alg) Sum(parts ...[]byte) []byte {
	h := a.New()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

// Valid reports whether a names a known algorithm.
func (a Alg) Valid() bool { return a == SHA1 || a == SHA256 }
