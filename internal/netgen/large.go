package netgen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/authhints/spv/internal/graph"
)

// This file holds the large-world generators behind the lazy-snapshot
// benchmarks: Synthesize's road-shaped construction (kNN candidates, MST,
// subdivision) costs superlinear time and sizable intermediates, which is
// the right trade for paper-faithful topology at laptop scale but the
// wrong one for the 10⁵–10⁶-node worlds the snapshot layer must handle.
// Grid and ScaleFree stream nodes and edges straight into the graph in
// O(n + m) with O(n) working memory, so generating a million-node world
// takes seconds — the snapshot, not the generator, becomes the thing
// under test.

// Grid builds a near-square planar lattice of exactly n nodes: node i
// sits at row i/cols, column i%cols, with jittered coordinates in
// [0..Span]² and edges to its right and lower neighbors weighted by
// length times a per-edge road-quality factor in [1.0, 1.3]. The last
// row may be partial; every node still reaches its up or left neighbor,
// so the lattice is connected by construction. Degree ≈ 4 — denser than
// the road networks, which is what makes it a good stress shape for
// snapshot size at a given node count.
func Grid(n int, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("netgen: need at least 2 nodes, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	// Cell pitch in normalized coordinates; jitter stays well under half a
	// pitch so neighbor geometry (and thus edge weights) remains grid-like.
	pitch := Span / float64(maxInt(rows, cols))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		x := clampSpan((float64(c) + 0.5 + 0.4*(rng.Float64()-0.5)) * pitch)
		y := clampSpan((float64(r) + 0.5 + 0.4*(rng.Float64()-0.5)) * pitch)
		g.AddNode(x, y)
	}
	quality := func() float64 { return 1 + 0.3*rng.Float64() }
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		if c+1 < cols && i+1 < n && (i+1)/cols == r {
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), g.Euclid(graph.NodeID(i), graph.NodeID(i+1))*quality())
		}
		if i+cols < n {
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+cols), g.Euclid(graph.NodeID(i), graph.NodeID(i+cols))*quality())
		}
	}
	g.SortAdjacency()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("netgen: grid invalid: %w", err)
	}
	return g, nil
}

// ScaleFree builds a Barabási–Albert preferential-attachment graph of n
// nodes: each new node attaches to degree distinct existing nodes chosen
// proportionally to their current degree, via the classic
// random-edge-endpoint trick (sampling a uniform endpoint from the edge
// list IS degree-proportional sampling, no weighted structure needed).
// Connected by construction — every node links into the existing
// component. Coordinates are uniform in [0..Span]² and weights are
// length-based like the other generators; the topology, not the
// geometry, is the point: hub-heavy degree distributions are the
// adversarial opposite of road networks for the hint methods.
func ScaleFree(n, degree int, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("netgen: need at least 2 nodes, got %d", n)
	}
	if degree < 1 {
		degree = 2
	}
	if degree >= n {
		degree = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*Span, rng.Float64()*Span)
	}
	// endpoints holds every edge endpoint ever added; a uniform draw from
	// it lands on node v with probability deg(v)/2m.
	endpoints := make([]int32, 0, 2*n*degree)
	addEdge := func(u, v int) {
		w := g.Euclid(graph.NodeID(u), graph.NodeID(v)) * (1 + 0.3*rng.Float64())
		if w <= 0 {
			w = 0.001
		}
		g.MustAddEdge(graph.NodeID(u), graph.NodeID(v), w)
		endpoints = append(endpoints, int32(u), int32(v))
	}
	// Seed clique over the first degree+1 nodes gives every early node
	// nonzero degree before preferential attachment starts.
	for u := 0; u <= degree; u++ {
		for v := u + 1; v <= degree; v++ {
			addEdge(u, v)
		}
	}
	picked := map[int]bool{}
	for u := degree + 1; u < n; u++ {
		clear(picked)
		for len(picked) < degree {
			v := int(endpoints[rng.Intn(len(endpoints))])
			// Self-loops and duplicate targets retry; the endpoint pool is
			// large and hub-heavy, so a handful of retries suffice.
			if v != u && !picked[v] {
				picked[v] = true
				addEdge(u, v)
			}
		}
	}
	g.SortAdjacency()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("netgen: scale-free invalid: %w", err)
	}
	return g, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
