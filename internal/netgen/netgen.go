// Package netgen synthesizes road-network datasets with the structural
// shape of the paper's four DCW networks (DE, ARG, IND, NA): sparse, almost
// tree-like planar graphs (≈1.05 edges per node), spatially clustered
// nodes, coordinates normalized to [0..10,000]², and edge weights that are
// travel-cost-like (length times a road-quality factor) rather than pure
// Euclidean distances — the paper's methods must not and do not assume
// Euclidean weights.
//
// The original DCW exports are no longer distributed, so these generators
// are the documented substitution (DESIGN.md §3): every structural property
// the verification methods are sensitive to — locality, degree distribution,
// sparsity, clustering — is reproduced; absolute sizes scale with the
// configurable Scale factor.
package netgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/authhints/spv/internal/graph"
)

// Span is the coordinate range all generated networks are normalized to,
// matching the paper's [0..10,000] normalization.
const Span = 10000.0

// Dataset names one of the paper's four road networks.
type Dataset string

const (
	DE  Dataset = "DE"  // Germany: 28,867 nodes, 30,429 edges
	ARG Dataset = "ARG" // Argentina: 85,287 nodes, 88,357 edges
	IND Dataset = "IND" // India: 149,566 nodes, 155,483 edges
	NA  Dataset = "NA"  // North America: 175,813 nodes, 179,179 edges
)

// Datasets lists the four paper datasets in size order.
func Datasets() []Dataset { return []Dataset{DE, ARG, IND, NA} }

// shape describes a dataset's paper-reported size.
type shape struct {
	nodes, edges int
	seed         int64
}

var shapes = map[Dataset]shape{
	DE:  {28867, 30429, 101},
	ARG: {85287, 88357, 102},
	IND: {149566, 155483, 103},
	NA:  {175813, 179179, 104},
}

// Config controls generation.
type Config struct {
	// Scale multiplies the paper's node count (default 0.1 — see DESIGN.md
	// for the laptop-scale rationale).
	Scale float64
	// Seed overrides the per-dataset default seed when non-zero.
	Seed int64
}

// Generate synthesizes the named dataset. The result is connected,
// normalized to [0..Span]² and validated.
func Generate(d Dataset, cfg Config) (*graph.Graph, error) {
	s, ok := shapes[d]
	if !ok {
		return nil, fmt.Errorf("netgen: unknown dataset %q", d)
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 0.1
	}
	if scale < 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("netgen: bad scale %v", scale)
	}
	n := int(math.Round(float64(s.nodes) * scale))
	if n < 16 {
		n = 16
	}
	m := int(math.Round(float64(s.edges) * scale))
	seed := s.seed
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	return Synthesize(n, m, seed)
}

// Synthesize builds a road-like network with the requested node and edge
// counts. The construction mirrors how DCW exports are shaped:
//
//  1. sample a clustered *junction backbone* of about nodes/4 points
//     (population centers plus rural background),
//  2. connect it with a Euclidean MST over k-nearest-neighbor candidates,
//     plus the shortest extra local candidates to hit the backbone edge
//     target (chosen so the final edge surplus m−n matches the request —
//     subdivision preserves m−n exactly),
//  3. subdivide backbone edges into chains of degree-2 shape points,
//     proportionally to their length, until the node budget is met — this
//     reproduces the polyline-heavy DCW degree distribution (≈70% of nodes
//     have degree 2) that makes Dijkstra balls cover thousands of nodes,
//  4. weight each segment by its length times a per-road quality factor in
//     [1.0, 1.3]; coordinates are normalized to [0..Span]² before any
//     weight is derived.
func Synthesize(nodes, edges int, seed int64) (*graph.Graph, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("netgen: need at least 2 nodes, got %d", nodes)
	}
	if edges < nodes-1 {
		edges = nodes - 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Backbone sizing: the edge surplus (m − n) is invariant under edge
	// subdivision, so the backbone carries the whole surplus.
	backboneN := nodes / 4
	if backboneN < 16 {
		backboneN = nodes // tiny graphs: no subdivision
	}
	surplus := edges - nodes
	backboneM := backboneN + surplus
	if backboneM < backboneN-1 {
		backboneM = backboneN - 1
	}

	xs, ys := samplePoints(rng, backboneN)
	normalizePoints(xs, ys)

	cand := knnCandidates(xs, ys, 6)
	sort.Slice(cand, func(a, b int) bool { return cand[a].d < cand[b].d })

	// Kruskal MST over the candidates.
	uf := newUnionFind(backboneN)
	used := make([]bool, len(cand))
	for i, c := range cand {
		if uf.union(c.u, c.v) {
			used[i] = true
		}
	}
	// Stitch residual components (rare: kNN graphs are near-connected).
	for uf.components > 1 {
		u, v := nearestCrossPair(xs, ys, uf)
		uf.union(u, v)
		cand = append(cand, candidate{u, v, dist2(xs, ys, u, v)})
		used = append(used, true)
	}
	type bbEdge struct {
		u, v int
		len  float64
	}
	var backbone []bbEdge
	have := make(map[uint64]bool)
	push := func(u, v int) {
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(hi)
		if u != v && !have[key] {
			have[key] = true
			backbone = append(backbone, bbEdge{u, v, math.Sqrt(dist2(xs, ys, u, v))})
		}
	}
	for i, c := range cand {
		if used[i] {
			push(c.u, c.v)
		}
	}
	for i, c := range cand {
		if len(backbone) >= backboneM {
			break
		}
		if !used[i] {
			push(c.u, c.v)
		}
	}

	// Distribute shape points over backbone edges proportionally to length.
	extra := nodes - backboneN
	totalLen := 0.0
	for _, e := range backbone {
		totalLen += e.len
	}
	splits := make([]int, len(backbone))
	assigned := 0
	if totalLen > 0 && extra > 0 {
		for i, e := range backbone {
			s := int(float64(extra) * e.len / totalLen)
			splits[i] = s
			assigned += s
		}
		// Spread the rounding remainder over the longest edges.
		order := make([]int, len(backbone))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return backbone[order[a]].len > backbone[order[b]].len })
		for i := 0; assigned < extra; i = (i + 1) % len(order) {
			splits[order[i]]++
			assigned++
		}
	}

	g := graph.New(nodes)
	for i := 0; i < backboneN; i++ {
		g.AddNode(xs[i], ys[i])
	}
	addSeg := func(u, v graph.NodeID, quality float64) {
		w := g.Euclid(u, v) * quality
		if w <= 0 {
			w = 0.001 // coincident points: tiny positive cost
		}
		g.MustAddEdge(u, v, w)
	}
	for i, e := range backbone {
		quality := 1 + 0.3*rng.Float64() // per-road factor shared by segments
		prev := graph.NodeID(e.u)
		k := splits[i]
		for s := 1; s <= k; s++ {
			frac := float64(s) / float64(k+1)
			// Shape points follow the straight line with slight jitter.
			jx := (rng.Float64() - 0.5) * e.len * 0.05
			jy := (rng.Float64() - 0.5) * e.len * 0.05
			nx := clampSpan(xs[e.u] + (xs[e.v]-xs[e.u])*frac + jx)
			ny := clampSpan(ys[e.u] + (ys[e.v]-ys[e.u])*frac + jy)
			mid := g.AddNode(nx, ny)
			addSeg(prev, mid, quality)
			prev = mid
		}
		addSeg(prev, graph.NodeID(e.v), quality)
	}

	g.SortAdjacency()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("netgen: generated graph invalid: %w", err)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("netgen: generated graph disconnected")
	}
	return g, nil
}

// samplePoints draws clustered road-network-like coordinates: a few dense
// population centers holding most junctions, over a sparse rural
// background. The concentration matters for reproduction fidelity: in the
// DCW networks a fixed query range reaches a large node fraction because
// sources are, with high probability, inside dense areas.
func samplePoints(rng *rand.Rand, n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	clusters := 6 + n/400
	cx := make([]float64, clusters)
	cy := make([]float64, clusters)
	cr := make([]float64, clusters)
	for i := range cx {
		cx[i] = Span * (0.1 + 0.8*rng.Float64())
		cy[i] = Span * (0.1 + 0.8*rng.Float64())
		cr[i] = Span * (0.04 + 0.08*rng.Float64())
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.55 { // 55% clustered
			c := rng.Intn(clusters)
			xs[i] = cx[c] + rng.NormFloat64()*cr[c]
			ys[i] = cy[c] + rng.NormFloat64()*cr[c]
		} else { // 45% background
			xs[i] = rng.Float64() * Span
			ys[i] = rng.Float64() * Span
		}
	}
	return xs, ys
}

func clampSpan(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > Span {
		return Span
	}
	return v
}

// normalizePoints rescales coordinates into [0, Span]² preserving aspect
// ratio (the paper's normalization), before any edge weight is derived.
func normalizePoints(xs, ys []float64) {
	minX, minY := math.MaxFloat64, math.MaxFloat64
	maxX, maxY := -math.MaxFloat64, -math.MaxFloat64
	for i := range xs {
		minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
		minY, maxY = math.Min(minY, ys[i]), math.Max(maxY, ys[i])
	}
	ext := math.Max(maxX-minX, maxY-minY)
	if ext == 0 {
		return
	}
	s := Span / ext
	for i := range xs {
		xs[i] = (xs[i] - minX) * s
		ys[i] = (ys[i] - minY) * s
	}
}

// candidate is a potential edge with squared length.
type candidate struct {
	u, v int
	d    float64
}

// knnCandidates returns, for each point, edges to its k nearest neighbors,
// deduplicated, found with a uniform grid index (expected O(n·k)).
func knnCandidates(xs, ys []float64, k int) []candidate {
	n := len(xs)
	side := int(math.Max(1, math.Sqrt(float64(n)/2)))
	minX, minY := math.MaxFloat64, math.MaxFloat64
	maxX, maxY := -math.MaxFloat64, -math.MaxFloat64
	for i := 0; i < n; i++ {
		minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
		minY, maxY = math.Min(minY, ys[i]), math.Max(maxY, ys[i])
	}
	ext := math.Max(maxX-minX, maxY-minY)
	if ext == 0 {
		ext = 1
	}
	cellOf := func(i int) (int, int) {
		cx := int((xs[i] - minX) / ext * float64(side))
		cy := int((ys[i] - minY) / ext * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	buckets := make([][]int, side*side)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		buckets[cy*side+cx] = append(buckets[cy*side+cx], i)
	}

	type nb struct {
		idx int
		d   float64
	}
	seen := make(map[uint64]bool, n*k)
	var out []candidate
	best := make([]nb, 0, 64)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		best = best[:0]
		// Expand rings until we have k neighbors and one extra ring margin.
		for ring := 0; ring < side; ring++ {
			added := false
			for dy := -ring; dy <= ring; dy++ {
				for dx := -ring; dx <= ring; dx++ {
					if maxAbs(dx, dy) != ring {
						continue
					}
					x, y := cx+dx, cy+dy
					if x < 0 || x >= side || y < 0 || y >= side {
						continue
					}
					for _, j := range buckets[y*side+x] {
						if j == i {
							continue
						}
						best = append(best, nb{j, dist2(xs, ys, i, j)})
						added = true
					}
				}
			}
			if len(best) >= k && (ring > 0 || !added) {
				break
			}
		}
		sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
		if len(best) > k {
			best = best[:k]
		}
		for _, b := range best {
			lo, hi := i, b.idx
			if lo > hi {
				lo, hi = hi, lo
			}
			key := uint64(lo)<<32 | uint64(hi)
			if !seen[key] {
				seen[key] = true
				out = append(out, candidate{lo, hi, b.d})
			}
		}
	}
	return out
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func dist2(xs, ys []float64, u, v int) float64 {
	dx, dy := xs[u]-xs[v], ys[u]-ys[v]
	return dx*dx + dy*dy
}

// nearestCrossPair finds the closest pair of points in different union-find
// components (linear scan; only runs for the rare residual stitching).
func nearestCrossPair(xs, ys []float64, uf *unionFind) (int, int) {
	bu, bv, bd := -1, -1, math.MaxFloat64
	// Pick the smallest component and scan against all others.
	rootCount := map[int]int{}
	for i := range xs {
		rootCount[uf.find(i)]++
	}
	smallRoot, smallSize := -1, math.MaxInt64
	for r, c := range rootCount {
		if c < smallSize {
			smallRoot, smallSize = r, c
		}
	}
	for i := range xs {
		if uf.find(i) != smallRoot {
			continue
		}
		for j := range xs {
			if uf.find(j) == smallRoot {
				continue
			}
			if d := dist2(xs, ys, i, j); d < bd {
				bu, bv, bd = i, j, d
			}
		}
	}
	return bu, bv
}

// unionFind is a standard disjoint-set with path halving and union by size.
type unionFind struct {
	parent     []int
	size       []int
	components int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n), components: n}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.components--
	return true
}
