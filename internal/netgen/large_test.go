package netgen

import (
	"testing"

	"github.com/authhints/spv/internal/graph"
)

func TestGridShape(t *testing.T) {
	for _, n := range []int{2, 5, 100, 1000, 4097} {
		g, err := Grid(n, 7)
		if err != nil {
			t.Fatalf("Grid(%d): %v", n, err)
		}
		if g.NumNodes() != n {
			t.Fatalf("Grid(%d): %d nodes", n, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Fatalf("Grid(%d) disconnected", n)
		}
		// A near-square lattice has close to 2n edges (minus the two open
		// borders); well above tree sparsity, well below quadratic.
		if m := g.NumEdges(); n >= 100 && (m < n || m > 2*n) {
			t.Fatalf("Grid(%d): %d edges out of lattice range", n, m)
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	a, err := Grid(500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid(500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		ea, eb := a.Neighbors(graph.NodeID(v)), b.Neighbors(graph.NodeID(v))
		if len(ea) != len(eb) {
			t.Fatalf("node %d: degree differs", v)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("node %d: edge %d differs", v, i)
			}
		}
	}
}

func TestScaleFreeShape(t *testing.T) {
	g, err := ScaleFree(2000, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("%d nodes", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
	// Preferential attachment must actually concentrate degree: the busiest
	// node should see far more than the attachment constant.
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := len(g.Neighbors(graph.NodeID(v))); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Fatalf("max degree %d; expected hub formation", maxDeg)
	}
}

func TestScaleFreeSmall(t *testing.T) {
	// degree clamps below n; tiny graphs must still come out connected.
	for _, n := range []int{2, 3, 5} {
		g, err := ScaleFree(n, 4, 3)
		if err != nil {
			t.Fatalf("ScaleFree(%d): %v", n, err)
		}
		if !g.IsConnected() {
			t.Fatalf("ScaleFree(%d) disconnected", n)
		}
	}
}
