package netgen

import (
	"math"
	"testing"

	"github.com/authhints/spv/internal/graph"
)

func TestSynthesizeBasicProperties(t *testing.T) {
	g, err := Synthesize(500, 527, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Errorf("nodes = %d, want 500", g.NumNodes())
	}
	if g.NumEdges() < 499 {
		t.Errorf("edges = %d, below spanning tree", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("not connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	minX, minY, maxX, maxY := g.Bounds()
	if minX < 0 || minY < 0 || maxX > Span+1e-6 || maxY > Span+1e-6 {
		t.Errorf("bounds (%v,%v,%v,%v) outside [0,%v]", minX, minY, maxX, maxY, Span)
	}
}

func TestSynthesizeHitsEdgeTarget(t *testing.T) {
	g, err := Synthesize(1000, 1054, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Edge target is approximate but should be within a few percent: kNN
	// candidates far exceed 1.054 edges/node.
	if g.NumEdges() < 1040 || g.NumEdges() > 1054 {
		t.Errorf("edges = %d, want ≈1054", g.NumEdges())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(300, 320, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(300, 320, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("sizes differ across runs")
	}
	for v := 0; v < a.NumNodes(); v++ {
		id := graph.NodeID(v)
		if a.X(id) != b.X(id) || a.Y(id) != b.Y(id) {
			t.Fatalf("node %d coordinates differ", v)
		}
		ea, eb := a.Neighbors(id), b.Neighbors(id)
		if len(ea) != len(eb) {
			t.Fatalf("node %d degrees differ", v)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	a, _ := Synthesize(200, 210, 1)
	b, _ := Synthesize(200, 210, 2)
	same := true
	for v := 0; v < a.NumNodes() && same; v++ {
		id := graph.NodeID(v)
		if a.X(id) != b.X(id) || a.Y(id) != b.Y(id) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical layouts")
	}
}

func TestWeightsExceedLength(t *testing.T) {
	g, _ := Synthesize(400, 420, 3)
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		for _, e := range g.Neighbors(id) {
			if e.To < id {
				continue
			}
			l := g.Euclid(id, e.To)
			if e.W < l-1e-9 {
				t.Fatalf("edge (%d,%d) weight %v below length %v", id, e.To, e.W, l)
			}
			if l > 0 && e.W > l*1.31 {
				t.Fatalf("edge (%d,%d) weight %v above 1.3×length %v", id, e.To, e.W, l)
			}
		}
	}
}

func TestGenerateDatasets(t *testing.T) {
	for _, d := range Datasets() {
		g, err := Generate(d, Config{Scale: 0.01})
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		want := int(math.Round(float64(shapes[d].nodes) * 0.01))
		if g.NumNodes() != want {
			t.Errorf("%s: %d nodes, want %d", d, g.NumNodes(), want)
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", d)
		}
		ratio := float64(g.NumEdges()) / float64(g.NumNodes())
		if ratio < 0.99 || ratio > 1.10 {
			t.Errorf("%s: edge/node ratio %v outside road-network range", d, ratio)
		}
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate("XX", Config{}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Generate(DE, Config{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := Generate(DE, Config{Scale: math.NaN()}); err == nil {
		t.Error("NaN scale accepted")
	}
	if _, err := Synthesize(1, 0, 1); err == nil {
		t.Error("single-node graph accepted")
	}
}

func TestGenerateMinimumSize(t *testing.T) {
	// Tiny scales clamp to a small but workable graph.
	g, err := Generate(DE, Config{Scale: 0.00001})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 16 {
		t.Errorf("clamped size %d too small", g.NumNodes())
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	if uf.components != 5 {
		t.Fatal("initial component count wrong")
	}
	if !uf.union(0, 1) || !uf.union(2, 3) {
		t.Error("fresh unions should report true")
	}
	if uf.union(1, 0) {
		t.Error("repeated union should report false")
	}
	if uf.components != 3 {
		t.Errorf("components = %d, want 3", uf.components)
	}
	if uf.find(0) != uf.find(1) || uf.find(2) != uf.find(3) {
		t.Error("find inconsistent")
	}
	if uf.find(4) == uf.find(0) {
		t.Error("separate sets merged")
	}
}

func TestClusteringIsPresent(t *testing.T) {
	// Clustered sampling should make nearest-neighbor distances much
	// smaller than a uniform layout would produce on average.
	g, _ := Synthesize(2000, 2100, 11)
	var totalNN float64
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		best := math.MaxFloat64
		for _, e := range g.Neighbors(id) {
			if d := g.Euclid(id, e.To); d < best {
				best = d
			}
		}
		totalNN += best
	}
	avgNN := totalNN / float64(g.NumNodes())
	uniformSpacing := Span / math.Sqrt(float64(g.NumNodes()))
	if avgNN > uniformSpacing {
		t.Errorf("avg nearest edge %v not below uniform spacing %v; clustering missing", avgNN, uniformSpacing)
	}
}
