// Package snapshot implements the container format for persistent ADS
// snapshots: a versioned, length-prefixed, CRC-checked sequence of sections
// that serializes a complete outsourced deployment to one file. The format
// layer is deliberately dumb — it frames opaque section payloads and
// guarantees their integrity; what the payloads mean (graph, Merkle levels,
// hint rows, signatures) is the concern of internal/core, which owns the
// section kinds and their sub-encodings.
//
// # File layout
//
// All integers are big-endian. A snapshot is
//
//	header | section* | end marker
//
//	header:   magic "SPVSNAP1" (8) | version u32 | flags u32 | epoch i64
//	section:  kind u32 | length u64 | payload[length] | crc u32
//	end:      kind 0   | count  u64 |                 | crc u32
//
// Each section's crc is CRC-32 (IEEE) over its 12-byte kind+length prefix
// followed by its payload, so a flipped kind or length byte is caught as
// surely as payload corruption. The end marker's crc covers its own
// kind+count prefix, and its count must equal the number of sections
// written, so silent truncation at a section boundary is detected as
// reliably as mid-payload corruption. Kind 0 is reserved for the end
// marker; payload semantics for kinds ≥ 1 belong to the producing layer.
//
// # Version and compatibility rules
//
// Version is bumped whenever any payload encoding changes shape — the
// format carries precomputed Merkle digests, so there is no such thing as
// a tolerant re-interpretation: a reader either understands a version
// exactly or refuses it. Unknown section kinds within a known version are
// skippable by Scan (inspection) but are an error for semantic loaders,
// which must not silently drop state they do not understand.
//
// # Robustness
//
// Readers never trust a declared length: payloads are read in bounded
// chunks that grow only as bytes actually arrive, so a lying length field
// costs at most one chunk of allocation before the truncation error
// surfaces. Corruption — flipped payload bytes, truncated files, wrong
// section counts — is reported as an error wrapping ErrCorrupt, never a
// panic.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the current snapshot format version. Readers refuse any other
// version: payloads carry precomputed digests whose layout must match the
// writer exactly (see the package compatibility rules).
const Version = 1

// magic identifies snapshot files; the trailing "1" is a human-visible
// format generation, distinct from the finer-grained version field.
const magic = "SPVSNAP1"

// EndKind is the reserved section kind of the end marker. Producing layers
// must number their sections from 1.
const EndKind = 0

// ErrCorrupt tags every integrity failure a reader can detect: bad magic,
// unsupported version, truncation, CRC mismatch, or a section count that
// does not match the end marker. Callers test with errors.Is.
var ErrCorrupt = errors.New("snapshot: corrupt")

// headerSize is the fixed byte size of the file header.
const headerSize = 8 + 4 + 4 + 8

// sectionHeadSize is the fixed byte size of a section's kind+length prefix.
const sectionHeadSize = 4 + 8

// readChunk bounds how much a reader allocates ahead of verified bytes:
// payloads grow in readChunk steps as data actually arrives, so a lying
// length field cannot translate into a giant speculative allocation.
const readChunk = 1 << 20

// Writer streams one snapshot to an io.Writer: header first, then sections
// in call order, then the end marker on Close. It buffers nothing beyond
// the caller's payload slice, so writing a multi-gigabyte deployment costs
// constant memory on top of the payloads themselves. Not safe for
// concurrent use.
type Writer struct {
	w        io.Writer
	sections uint64
	written  int64
	closed   bool
	err      error
}

// NewWriter writes the header and returns a writer ready for Section
// calls. epoch is the deployment's update-batch counter, surfaced in the
// header so inspectors can report it without parsing any payload.
func NewWriter(w io.Writer, epoch int64) (*Writer, error) {
	sw := &Writer{w: w}
	var buf [headerSize]byte
	copy(buf[:8], magic)
	binary.BigEndian.PutUint32(buf[8:], Version)
	binary.BigEndian.PutUint32(buf[12:], 0) // flags, reserved
	binary.BigEndian.PutUint64(buf[16:], uint64(epoch))
	if err := sw.write(buf[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *Writer) write(p []byte) error {
	if sw.err != nil {
		return sw.err
	}
	n, err := sw.w.Write(p)
	sw.written += int64(n)
	if err != nil {
		sw.err = fmt.Errorf("snapshot: write: %w", err)
	}
	return sw.err
}

// Section appends one framed section: kind, length, payload, payload CRC.
// kind must not be EndKind. The payload is not retained.
func (sw *Writer) Section(kind uint32, payload []byte) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return errors.New("snapshot: section after Close")
	}
	if kind == EndKind {
		return fmt.Errorf("snapshot: section kind %d is reserved", EndKind)
	}
	var head [sectionHeadSize]byte
	binary.BigEndian.PutUint32(head[:], kind)
	binary.BigEndian.PutUint64(head[4:], uint64(len(payload)))
	if err := sw.write(head[:]); err != nil {
		return err
	}
	if err := sw.write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sectionCRC(head, payload))
	if err := sw.write(tail[:]); err != nil {
		return err
	}
	sw.sections++
	return nil
}

// Close writes the end marker (kind 0, section count, count CRC). The
// underlying io.Writer is not closed — callers own its lifecycle.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return nil
	}
	sw.closed = true
	var buf [sectionHeadSize + 4]byte
	binary.BigEndian.PutUint32(buf[:], EndKind)
	binary.BigEndian.PutUint64(buf[4:], sw.sections)
	binary.BigEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[:12]))
	return sw.write(buf[:])
}

// sectionCRC is CRC-32 (IEEE) over a section's kind+length prefix followed
// by its payload.
func sectionCRC(head [sectionHeadSize]byte, payload []byte) uint32 {
	sum := crc32.ChecksumIEEE(head[:])
	return crc32.Update(sum, crc32.IEEETable, payload)
}

// Bytes returns the total bytes written so far, including framing.
func (sw *Writer) Bytes() int64 { return sw.written }

// Section is one decoded section: its kind and its CRC-verified payload.
// The payload is owned by the caller.
type Section struct {
	Kind    uint32
	Payload []byte
}

// Reader streams sections back from an io.Reader, verifying every CRC and
// the end marker's section count. Not safe for concurrent use.
type Reader struct {
	r        io.Reader
	epoch    int64
	sections uint64
	done     bool
}

// NewReader parses and validates the header. The reader consumes r
// strictly sequentially, so r need not be seekable.
func NewReader(r io.Reader) (*Reader, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: header truncated: %v", ErrCorrupt, err)
	}
	if string(buf[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:8])
	}
	if v := binary.BigEndian.Uint32(buf[8:]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (reader speaks %d)", ErrCorrupt, v, Version)
	}
	return &Reader{r: r, epoch: int64(binary.BigEndian.Uint64(buf[16:]))}, nil
}

// Epoch returns the deployment epoch recorded in the header.
func (sr *Reader) Epoch() int64 { return sr.epoch }

// Next returns the next section, or io.EOF after a valid end marker. Any
// integrity failure returns an error wrapping ErrCorrupt; once an error or
// EOF is returned the reader is exhausted.
func (sr *Reader) Next() (*Section, error) {
	if sr.done {
		return nil, io.EOF
	}
	var head [sectionHeadSize]byte
	if _, err := io.ReadFull(sr.r, head[:]); err != nil {
		sr.done = true
		return nil, fmt.Errorf("%w: section header truncated: %v", ErrCorrupt, err)
	}
	kind := binary.BigEndian.Uint32(head[:])
	length := binary.BigEndian.Uint64(head[4:])
	if kind == EndKind {
		sr.done = true
		var tail [4]byte
		if _, err := io.ReadFull(sr.r, tail[:]); err != nil {
			return nil, fmt.Errorf("%w: end marker truncated: %v", ErrCorrupt, err)
		}
		if got := binary.BigEndian.Uint32(tail[:]); got != crc32.ChecksumIEEE(head[:12]) {
			return nil, fmt.Errorf("%w: end marker CRC mismatch", ErrCorrupt)
		}
		if length != sr.sections {
			return nil, fmt.Errorf("%w: end marker counts %d sections, read %d", ErrCorrupt, length, sr.sections)
		}
		return nil, io.EOF
	}
	payload, err := readBounded(sr.r, length)
	if err != nil {
		sr.done = true
		return nil, fmt.Errorf("%w: section kind %d payload: %v", ErrCorrupt, kind, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(sr.r, tail[:]); err != nil {
		sr.done = true
		return nil, fmt.Errorf("%w: section kind %d CRC truncated: %v", ErrCorrupt, kind, err)
	}
	if got := binary.BigEndian.Uint32(tail[:]); got != sectionCRC(head, payload) {
		sr.done = true
		return nil, fmt.Errorf("%w: section kind %d CRC mismatch", ErrCorrupt, kind)
	}
	sr.sections++
	return &Section{Kind: kind, Payload: payload}, nil
}

// readBounded reads exactly length bytes, growing the buffer chunk by
// chunk so a lying length cannot force a giant allocation before the
// truncation error surfaces.
func readBounded(r io.Reader, length uint64) ([]byte, error) {
	var out []byte
	for remaining := length; remaining > 0; {
		step := remaining
		if step > readChunk {
			step = readChunk
		}
		start := len(out)
		out = append(out, make([]byte, step)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, fmt.Errorf("truncated (%d of %d bytes): %v", uint64(start), length, err)
		}
		remaining -= step
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

// SectionInfo describes one section without retaining its payload.
type SectionInfo struct {
	Kind   uint32
	Length uint64
	CRC    uint32
}

// Info is the inspection summary Scan produces.
type Info struct {
	Epoch    int64
	Sections []SectionInfo
	// Bytes is the total file size consumed, framing included.
	Bytes int64
}

// Scan reads a whole snapshot, verifying every CRC and the end marker, and
// returns the per-section summary. It retains no payload beyond one
// section at a time — the inspection path for cmd/spvsnap.
func Scan(r io.Reader) (*Info, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	info := &Info{Epoch: sr.epoch, Bytes: headerSize}
	for {
		s, err := sr.Next()
		if err == io.EOF {
			info.Bytes += sectionHeadSize + 4 // end marker
			return info, nil
		}
		if err != nil {
			return nil, err
		}
		var head [sectionHeadSize]byte
		binary.BigEndian.PutUint32(head[:], s.Kind)
		binary.BigEndian.PutUint64(head[4:], uint64(len(s.Payload)))
		info.Sections = append(info.Sections, SectionInfo{
			Kind:   s.Kind,
			Length: uint64(len(s.Payload)),
			CRC:    sectionCRC(head, s.Payload),
		})
		info.Bytes += sectionHeadSize + int64(len(s.Payload)) + 4
	}
}
