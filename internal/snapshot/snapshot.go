// Package snapshot implements the container format for persistent ADS
// snapshots: a versioned, length-prefixed, CRC-checked sequence of sections
// that serializes a complete outsourced deployment to one file. The format
// layer is deliberately dumb — it frames opaque section payloads and
// guarantees their integrity; what the payloads mean (graph, Merkle levels,
// hint rows, signatures) is the concern of internal/core, which owns the
// section kinds and their sub-encodings.
//
// # File layout
//
// All integers are big-endian. A version-2 snapshot is
//
//	header | section* | index | end marker
//
//	header:   magic "SPVSNAP1" (8) | version u32 | flags u32 | epoch i64
//	section:  kind u32 | length u64 | payload[length] | crc u32
//	index:    kind 0xFFFFFFFF | length u64 | count u32 |
//	          count × (kind u32, offset u64, length u64, crc u32) | crc u32
//	end:      kind 0 | count u64 | indexOff u64 | crc u32
//
// Each section's crc is CRC-32 (IEEE) over its 12-byte kind+length prefix
// followed by its payload, so a flipped kind or length byte is caught as
// surely as payload corruption. The index is framed exactly like a section
// (under the reserved kind IndexKind) and records every preceding
// section's file offset, length and crc — the random-access map that lets
// a File open in O(sections) and read one payload with one pread. The end
// marker's crc covers its kind+count+indexOff prefix; its count must equal
// the number of payload sections written (the index is not counted), and
// indexOff must point at the index, so silent truncation at a section
// boundary is detected as reliably as mid-payload corruption. Kind 0 is
// reserved for the end marker and kind 0xFFFFFFFF for the index; payload
// semantics for other kinds belong to the producing layer.
//
// Version-1 files (no index; 16-byte end marker without indexOff) remain
// fully readable: the sequential Reader speaks both versions, and File
// falls back to a frame walk — reading only section heads, never payloads
// — when a file is v1 or its index is corrupt.
//
// # Version and compatibility rules
//
// Version is bumped whenever any payload encoding changes shape — the
// format carries precomputed Merkle digests, so there is no such thing as
// a tolerant re-interpretation: a reader either understands a version
// exactly or refuses it. Unknown section kinds within a known version are
// skippable by Scan (inspection) but are an error for semantic loaders,
// which must not silently drop state they do not understand.
//
// # Robustness
//
// Readers never trust a declared length: sequential reads grow payload
// buffers in bounded chunks as bytes actually arrive, and File validates
// every index offset and length against the real file size before
// allocating, so a lying length field cannot translate into a giant
// speculative allocation. Corruption — flipped payload bytes, truncated
// files, wrong section counts, a lying index — is reported as an error
// wrapping ErrCorrupt, never a panic. A payload read through File is CRC-
// verified at read time (first touch), so lazy loaders surface corruption
// as a clean error from the query that first needs the section.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the current snapshot format version. Writers emit it;
// readers additionally accept version 1 (the pre-index format, identical
// except for the trailing index and the shorter end marker).
const Version = 2

// versionV1 is the legacy, index-less format both Reader and File still
// accept.
const versionV1 = 1

// magic identifies snapshot files; the trailing "1" is a human-visible
// format generation, distinct from the finer-grained version field.
const magic = "SPVSNAP1"

// EndKind is the reserved section kind of the end marker. Producing layers
// must number their sections from 1.
const EndKind = 0

// IndexKind is the reserved section kind of the trailing index. The
// sequential Reader validates and consumes it internally; it is never
// surfaced as a payload section.
const IndexKind = 0xFFFFFFFF

// ErrCorrupt tags every integrity failure a reader can detect: bad magic,
// unsupported version, truncation, CRC mismatch, a section count that
// does not match the end marker, or an index that disagrees with the
// sections it describes. Callers test with errors.Is.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrNoSection reports a File.Section lookup for a kind the file does not
// contain.
var ErrNoSection = errors.New("snapshot: section not present")

// headerSize is the fixed byte size of the file header.
const headerSize = 8 + 4 + 4 + 8

// sectionHeadSize is the fixed byte size of a section's kind+length prefix.
const sectionHeadSize = 4 + 8

// indexEntrySize is the fixed byte size of one index entry:
// kind u32 | offset u64 | length u64 | crc u32.
const indexEntrySize = 4 + 8 + 8 + 4

// endSizeV1 and endSize are the full end-marker sizes (head + tail) of
// the two accepted versions: v1 has no indexOff field.
const (
	endSizeV1 = sectionHeadSize + 4
	endSize   = sectionHeadSize + 8 + 4
)

// readChunk bounds how much a reader allocates ahead of verified bytes:
// payloads grow in readChunk steps as data actually arrives, so a lying
// length field cannot translate into a giant speculative allocation.
const readChunk = 1 << 20

// SectionInfo describes one section without retaining its payload: its
// kind, its file offset (of the kind field), its payload length and its
// CRC. It is both the index entry layout and the Scan/File inspection
// record.
type SectionInfo struct {
	Kind   uint32
	Offset int64
	Length uint64
	CRC    uint32
}

// Writer streams one snapshot to an io.Writer: header first, then sections
// in call order, then the index and end marker on Close. It buffers
// nothing beyond the caller's payload slice — BeginSection/EndSection
// stream a payload of known length straight through — so writing a
// multi-gigabyte deployment costs constant memory on top of the payloads
// themselves. Not safe for concurrent use.
type Writer struct {
	w        io.Writer
	sections uint64
	written  int64
	closed   bool
	err      error
	index    []SectionInfo
	// stream is the in-flight BeginSection state, nil between sections.
	stream *streamState
}

type streamState struct {
	kind      uint32
	offset    int64
	length    uint64
	remaining uint64
	crc       uint32
}

// NewWriter writes the header and returns a writer ready for Section
// calls. epoch is the deployment's update-batch counter, surfaced in the
// header so inspectors can report it without parsing any payload.
func NewWriter(w io.Writer, epoch int64) (*Writer, error) {
	sw := &Writer{w: w}
	var buf [headerSize]byte
	copy(buf[:8], magic)
	binary.BigEndian.PutUint32(buf[8:], Version)
	binary.BigEndian.PutUint32(buf[12:], 0) // flags, reserved
	binary.BigEndian.PutUint64(buf[16:], uint64(epoch))
	if err := sw.write(buf[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *Writer) write(p []byte) error {
	if sw.err != nil {
		return sw.err
	}
	n, err := sw.w.Write(p)
	sw.written += int64(n)
	if err != nil {
		sw.err = fmt.Errorf("snapshot: write: %w", err)
	}
	return sw.err
}

// checkKind rejects writes outside the legal section states.
func (sw *Writer) checkKind(kind uint32) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return errors.New("snapshot: section after Close")
	}
	if sw.stream != nil {
		return errors.New("snapshot: section while a streaming section is open")
	}
	if kind == EndKind || kind == IndexKind {
		return fmt.Errorf("snapshot: section kind %#x is reserved", kind)
	}
	return nil
}

// Section appends one framed section: kind, length, payload, payload CRC.
// kind must not be a reserved kind. The payload is not retained.
func (sw *Writer) Section(kind uint32, payload []byte) error {
	if err := sw.checkKind(kind); err != nil {
		return err
	}
	offset := sw.written
	var head [sectionHeadSize]byte
	binary.BigEndian.PutUint32(head[:], kind)
	binary.BigEndian.PutUint64(head[4:], uint64(len(payload)))
	if err := sw.write(head[:]); err != nil {
		return err
	}
	if err := sw.write(payload); err != nil {
		return err
	}
	crc := sectionCRC(head, payload)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	if err := sw.write(tail[:]); err != nil {
		return err
	}
	sw.sections++
	sw.index = append(sw.index, SectionInfo{Kind: kind, Offset: offset, Length: uint64(len(payload)), CRC: crc})
	return nil
}

// BeginSection opens a streaming section of exactly length payload bytes
// and returns the writer to stream them into. The producer must write the
// declared length precisely and then call EndSection — the CRC is
// accumulated as bytes flow, so nothing is buffered and the underlying
// writer need not be seekable. Writing past the declared length is an
// error; writing less is caught by EndSection.
func (sw *Writer) BeginSection(kind uint32, length uint64) (io.Writer, error) {
	if err := sw.checkKind(kind); err != nil {
		return nil, err
	}
	offset := sw.written
	var head [sectionHeadSize]byte
	binary.BigEndian.PutUint32(head[:], kind)
	binary.BigEndian.PutUint64(head[4:], length)
	if err := sw.write(head[:]); err != nil {
		return nil, err
	}
	sw.stream = &streamState{
		kind: kind, offset: offset, length: length, remaining: length,
		crc: crc32.ChecksumIEEE(head[:]),
	}
	return (*streamWriter)(sw), nil
}

// EndSection closes the streaming section opened by BeginSection, writing
// its CRC frame. The full declared length must have been written.
func (sw *Writer) EndSection() error {
	if sw.err != nil {
		return sw.err
	}
	st := sw.stream
	if st == nil {
		return errors.New("snapshot: EndSection without BeginSection")
	}
	if st.remaining != 0 {
		sw.err = fmt.Errorf("snapshot: streaming section kind %d short by %d bytes", st.kind, st.remaining)
		return sw.err
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], st.crc)
	if err := sw.write(tail[:]); err != nil {
		return err
	}
	sw.stream = nil
	sw.sections++
	sw.index = append(sw.index, SectionInfo{Kind: st.kind, Offset: st.offset, Length: st.length, CRC: st.crc})
	return nil
}

// streamWriter is the io.Writer handed out by BeginSection.
type streamWriter Writer

func (w *streamWriter) Write(p []byte) (int, error) {
	sw := (*Writer)(w)
	if sw.err != nil {
		return 0, sw.err
	}
	st := sw.stream
	if st == nil {
		return 0, errors.New("snapshot: write outside BeginSection/EndSection")
	}
	if uint64(len(p)) > st.remaining {
		sw.err = fmt.Errorf("snapshot: streaming section kind %d overflows its declared %d bytes", st.kind, st.length)
		return 0, sw.err
	}
	if err := sw.write(p); err != nil {
		return 0, err
	}
	st.remaining -= uint64(len(p))
	st.crc = crc32.Update(st.crc, crc32.IEEETable, p)
	return len(p), nil
}

// Close writes the index and the end marker. The underlying io.Writer is
// not closed — callers own its lifecycle.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return nil
	}
	if sw.stream != nil {
		sw.err = fmt.Errorf("snapshot: Close with streaming section kind %d still open", sw.stream.kind)
		return sw.err
	}
	sw.closed = true
	indexOff := sw.written
	if err := sw.writeIndex(); err != nil {
		return err
	}
	var buf [endSize]byte
	binary.BigEndian.PutUint32(buf[:], EndKind)
	binary.BigEndian.PutUint64(buf[4:], sw.sections)
	binary.BigEndian.PutUint64(buf[12:], uint64(indexOff))
	binary.BigEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
	return sw.write(buf[:])
}

// writeIndex emits the index as a normally framed section under IndexKind.
func (sw *Writer) writeIndex() error {
	payload := make([]byte, 0, 4+len(sw.index)*indexEntrySize)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(sw.index)))
	for _, e := range sw.index {
		payload = binary.BigEndian.AppendUint32(payload, e.Kind)
		payload = binary.BigEndian.AppendUint64(payload, uint64(e.Offset))
		payload = binary.BigEndian.AppendUint64(payload, e.Length)
		payload = binary.BigEndian.AppendUint32(payload, e.CRC)
	}
	var head [sectionHeadSize]byte
	binary.BigEndian.PutUint32(head[:], IndexKind)
	binary.BigEndian.PutUint64(head[4:], uint64(len(payload)))
	if err := sw.write(head[:]); err != nil {
		return err
	}
	if err := sw.write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sectionCRC(head, payload))
	return sw.write(tail[:])
}

// sectionCRC is CRC-32 (IEEE) over a section's kind+length prefix followed
// by its payload.
func sectionCRC(head [sectionHeadSize]byte, payload []byte) uint32 {
	sum := crc32.ChecksumIEEE(head[:])
	return crc32.Update(sum, crc32.IEEETable, payload)
}

// Bytes returns the total bytes written so far, including framing.
func (sw *Writer) Bytes() int64 { return sw.written }

// Section is one decoded section: its kind, its file offset, and its
// CRC-verified payload. The payload is owned by the caller.
type Section struct {
	Kind    uint32
	Offset  int64
	Payload []byte
}

// Reader streams sections back from an io.Reader, verifying every CRC and
// the end marker's section count. It speaks both format versions; a v2
// file's index is validated and consumed internally, never surfaced as a
// section. Not safe for concurrent use.
type Reader struct {
	r        io.Reader
	epoch    int64
	version  uint32
	sections uint64
	off      int64
	indexOff int64 // offset of the index section, 0 until seen
	indexed  bool
	done     bool
}

// NewReader parses and validates the header. The reader consumes r
// strictly sequentially, so r need not be seekable.
func NewReader(r io.Reader) (*Reader, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: header truncated: %v", ErrCorrupt, err)
	}
	if string(buf[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:8])
	}
	v := binary.BigEndian.Uint32(buf[8:])
	if v != Version && v != versionV1 {
		return nil, fmt.Errorf("%w: unsupported version %d (reader speaks %d and %d)", ErrCorrupt, v, versionV1, Version)
	}
	return &Reader{r: r, epoch: int64(binary.BigEndian.Uint64(buf[16:])), version: v, off: headerSize}, nil
}

// Epoch returns the deployment epoch recorded in the header.
func (sr *Reader) Epoch() int64 { return sr.epoch }

// Version returns the file's format version (1 or 2).
func (sr *Reader) Version() uint32 { return sr.version }

// Indexed reports whether a valid index section has been consumed. Only
// meaningful once Next has returned io.EOF.
func (sr *Reader) Indexed() bool { return sr.indexed }

func (sr *Reader) read(p []byte) error {
	n, err := io.ReadFull(sr.r, p)
	sr.off += int64(n)
	return err
}

// Next returns the next payload section, or io.EOF after a valid end
// marker. Any integrity failure returns an error wrapping ErrCorrupt; once
// an error or EOF is returned the reader is exhausted.
func (sr *Reader) Next() (*Section, error) {
	for {
		if sr.done {
			return nil, io.EOF
		}
		offset := sr.off
		var head [sectionHeadSize]byte
		if err := sr.read(head[:]); err != nil {
			sr.done = true
			return nil, fmt.Errorf("%w: section header truncated: %v", ErrCorrupt, err)
		}
		kind := binary.BigEndian.Uint32(head[:])
		length := binary.BigEndian.Uint64(head[4:])
		if kind == EndKind {
			sr.done = true
			return nil, sr.endMarker(head, length)
		}
		payload, err := readBounded(sr.r, length)
		sr.off += int64(len(payload))
		if err != nil {
			sr.done = true
			return nil, fmt.Errorf("%w: section kind %d payload: %v", ErrCorrupt, kind, err)
		}
		var tail [4]byte
		if err := sr.read(tail[:]); err != nil {
			sr.done = true
			return nil, fmt.Errorf("%w: section kind %d CRC truncated: %v", ErrCorrupt, kind, err)
		}
		if got := binary.BigEndian.Uint32(tail[:]); got != sectionCRC(head, payload) {
			sr.done = true
			return nil, fmt.Errorf("%w: section kind %d CRC mismatch", ErrCorrupt, kind)
		}
		if kind == IndexKind {
			// The index is container metadata: validate its shape here and
			// keep streaming — semantic loaders never see it.
			if err := sr.checkIndex(payload, offset); err != nil {
				sr.done = true
				return nil, err
			}
			continue
		}
		sr.sections++
		return &Section{Kind: kind, Offset: offset, Payload: payload}, nil
	}
}

// checkIndex validates an index section encountered mid-stream: well-
// formed, one per file, v2 only, and counting exactly the sections read
// so far (the index is written last, so a stray early index is corrupt).
func (sr *Reader) checkIndex(payload []byte, offset int64) error {
	if sr.version == versionV1 {
		return fmt.Errorf("%w: index section in a version-1 file", ErrCorrupt)
	}
	if sr.indexed {
		return fmt.Errorf("%w: duplicate index section", ErrCorrupt)
	}
	entries, err := parseIndex(payload)
	if err != nil {
		return err
	}
	if uint64(len(entries)) != sr.sections {
		return fmt.Errorf("%w: index lists %d sections, read %d", ErrCorrupt, len(entries), sr.sections)
	}
	sr.indexed = true
	sr.indexOff = offset
	return nil
}

// endMarker consumes and validates the version-appropriate end marker
// tail; head holds the already-read kind+count prefix.
func (sr *Reader) endMarker(head [sectionHeadSize]byte, count uint64) error {
	if sr.version == versionV1 {
		var tail [4]byte
		if err := sr.read(tail[:]); err != nil {
			return fmt.Errorf("%w: end marker truncated: %v", ErrCorrupt, err)
		}
		if got := binary.BigEndian.Uint32(tail[:]); got != crc32.ChecksumIEEE(head[:12]) {
			return fmt.Errorf("%w: end marker CRC mismatch", ErrCorrupt)
		}
		if count != sr.sections {
			return fmt.Errorf("%w: end marker counts %d sections, read %d", ErrCorrupt, count, sr.sections)
		}
		return io.EOF
	}
	var tail [12]byte
	if err := sr.read(tail[:]); err != nil {
		return fmt.Errorf("%w: end marker truncated: %v", ErrCorrupt, err)
	}
	crc := crc32.ChecksumIEEE(head[:12])
	crc = crc32.Update(crc, crc32.IEEETable, tail[:8])
	if got := binary.BigEndian.Uint32(tail[8:]); got != crc {
		return fmt.Errorf("%w: end marker CRC mismatch", ErrCorrupt)
	}
	if count != sr.sections {
		return fmt.Errorf("%w: end marker counts %d sections, read %d", ErrCorrupt, count, sr.sections)
	}
	indexOff := int64(binary.BigEndian.Uint64(tail[:8]))
	if !sr.indexed {
		return fmt.Errorf("%w: version-2 file has no index section", ErrCorrupt)
	}
	if indexOff != sr.indexOff {
		return fmt.Errorf("%w: end marker points index at %d, found at %d", ErrCorrupt, indexOff, sr.indexOff)
	}
	return io.EOF
}

// parseIndex decodes an index payload into section infos, validating only
// self-consistency (count vs payload size, monotonic offsets).
func parseIndex(payload []byte) ([]SectionInfo, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: index payload of %d bytes", ErrCorrupt, len(payload))
	}
	count := binary.BigEndian.Uint32(payload)
	if uint64(len(payload)) != 4+uint64(count)*indexEntrySize {
		return nil, fmt.Errorf("%w: index counts %d entries in %d bytes", ErrCorrupt, count, len(payload))
	}
	entries := make([]SectionInfo, count)
	prevEnd := int64(headerSize)
	for i := range entries {
		p := payload[4+i*indexEntrySize:]
		e := SectionInfo{
			Kind:   binary.BigEndian.Uint32(p),
			Offset: int64(binary.BigEndian.Uint64(p[4:])),
			Length: binary.BigEndian.Uint64(p[12:]),
			CRC:    binary.BigEndian.Uint32(p[20:]),
		}
		if e.Kind == EndKind || e.Kind == IndexKind {
			return nil, fmt.Errorf("%w: index entry %d has reserved kind %#x", ErrCorrupt, i, e.Kind)
		}
		if e.Offset < prevEnd {
			return nil, fmt.Errorf("%w: index entry %d offset %d overlaps the previous section", ErrCorrupt, i, e.Offset)
		}
		if e.Length > uint64(1)<<62 {
			return nil, fmt.Errorf("%w: index entry %d length %d", ErrCorrupt, i, e.Length)
		}
		prevEnd = e.Offset + sectionHeadSize + int64(e.Length) + 4
		entries[i] = e
	}
	return entries, nil
}

// readBounded reads exactly length bytes, growing the buffer chunk by
// chunk so a lying length cannot force a giant allocation.
func readBounded(r io.Reader, length uint64) ([]byte, error) {
	var out []byte
	for remaining := length; remaining > 0; {
		step := remaining
		if step > readChunk {
			step = readChunk
		}
		start := len(out)
		out = append(out, make([]byte, step)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return out[:start], fmt.Errorf("truncated (%d of %d bytes): %v", uint64(start), length, err)
		}
		remaining -= step
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

// Info is the inspection summary Scan produces.
type Info struct {
	Epoch   int64
	Version uint32
	// Indexed reports whether the file carries a valid trailing index.
	Indexed  bool
	Sections []SectionInfo
	// Bytes is the total file size consumed, framing included.
	Bytes int64
}

// Scan reads a whole snapshot, verifying every CRC and the end marker, and
// returns the per-section summary. It retains no payload beyond one
// section at a time — the inspection path for cmd/spvsnap.
func Scan(r io.Reader) (*Info, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	info := &Info{Epoch: sr.epoch, Version: sr.version}
	for {
		s, err := sr.Next()
		if err == io.EOF {
			info.Bytes = sr.off
			info.Indexed = sr.indexed
			return info, nil
		}
		if err != nil {
			return nil, err
		}
		var head [sectionHeadSize]byte
		binary.BigEndian.PutUint32(head[:], s.Kind)
		binary.BigEndian.PutUint64(head[4:], uint64(len(s.Payload)))
		info.Sections = append(info.Sections, SectionInfo{
			Kind:   s.Kind,
			Offset: s.Offset,
			Length: uint64(len(s.Payload)),
			CRC:    sectionCRC(head, s.Payload),
		})
	}
}
