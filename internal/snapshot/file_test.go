package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"sync"
	"testing"
)

// buildV1 hand-writes a version-1 snapshot (no index, 16-byte end marker)
// — the compatibility fixture current writers can no longer produce.
func buildV1(epoch int64, sections ...Section) []byte {
	var buf bytes.Buffer
	head := make([]byte, headerSize)
	copy(head, magic)
	binary.BigEndian.PutUint32(head[8:], versionV1)
	binary.BigEndian.PutUint64(head[16:], uint64(epoch))
	buf.Write(head)
	for _, s := range sections {
		var sh [sectionHeadSize]byte
		binary.BigEndian.PutUint32(sh[:], s.Kind)
		binary.BigEndian.PutUint64(sh[4:], uint64(len(s.Payload)))
		buf.Write(sh[:])
		buf.Write(s.Payload)
		var tail [4]byte
		binary.BigEndian.PutUint32(tail[:], sectionCRC(sh, s.Payload))
		buf.Write(tail[:])
	}
	var end [endSizeV1]byte
	binary.BigEndian.PutUint32(end[:], EndKind)
	binary.BigEndian.PutUint64(end[4:], uint64(len(sections)))
	binary.BigEndian.PutUint32(end[12:], crc32.ChecksumIEEE(end[:12]))
	buf.Write(end[:])
	return buf.Bytes()
}

var fileSections = []Section{
	{Kind: 1, Payload: []byte("config")},
	{Kind: 2, Payload: bytes.Repeat([]byte{0xC4}, 5000)},
	{Kind: 8, Payload: []byte{}},
}

func checkFileReads(t *testing.T, f *File) {
	t.Helper()
	if f.Epoch() != 9 {
		t.Fatalf("epoch = %d", f.Epoch())
	}
	if got := len(f.Sections()); got != len(fileSections) {
		t.Fatalf("%d sections, want %d", got, len(fileSections))
	}
	for i, want := range fileSections {
		e := f.Sections()[i]
		if e.Kind != want.Kind || e.Length != uint64(len(want.Payload)) {
			t.Fatalf("table entry %d = %+v", i, e)
		}
		got, err := f.Section(want.Kind)
		if err != nil {
			t.Fatalf("Section(%d): %v", want.Kind, err)
		}
		if !bytes.Equal(got, want.Payload) {
			t.Fatalf("Section(%d): %d bytes", want.Kind, len(got))
		}
	}
	if !f.Has(2) || f.Has(42) {
		t.Fatal("Has is wrong")
	}
	if _, err := f.Section(42); !errors.Is(err, ErrNoSection) {
		t.Fatalf("absent kind: %v", err)
	}
}

func TestFileIndexedOpen(t *testing.T) {
	data := buildSnapshot(t, 9, fileSections...)
	f, err := NewFile(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Indexed() || f.Version() != Version {
		t.Fatalf("indexed=%v version=%d", f.Indexed(), f.Version())
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("Size = %d", f.Size())
	}
	checkFileReads(t, f)
}

func TestFileV1FallbackWalk(t *testing.T) {
	data := buildV1(9, fileSections...)
	f, err := NewFile(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Indexed() || f.Version() != versionV1 {
		t.Fatalf("indexed=%v version=%d", f.Indexed(), f.Version())
	}
	checkFileReads(t, f)

	// The sequential reader keeps speaking v1 too.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		s, err := r.Next()
		if err == io.EOF {
			if i != len(fileSections) {
				t.Fatalf("read %d sections", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.Kind != fileSections[i].Kind {
			t.Fatalf("section %d kind %d", i, s.Kind)
		}
	}
}

// indexPayloadRange locates the index section's byte range in a v2 file.
func indexPayloadRange(t *testing.T, data []byte) (start, end int) {
	t.Helper()
	indexOff := int(binary.BigEndian.Uint64(data[len(data)-endSize+12:]))
	if binary.BigEndian.Uint32(data[indexOff:]) != IndexKind {
		t.Fatalf("no index at %d", indexOff)
	}
	length := int(binary.BigEndian.Uint64(data[indexOff+4:]))
	return indexOff + sectionHeadSize, indexOff + sectionHeadSize + length
}

func TestFileCorruptIndexFallsBackToWalk(t *testing.T) {
	data := buildSnapshot(t, 9, fileSections...)
	bad := append([]byte(nil), data...)
	start, _ := indexPayloadRange(t, bad)
	bad[start+2] ^= 0xFF // flip an index payload byte; sections are intact
	f, err := NewFile(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Indexed() {
		t.Fatal("corrupt index reported as indexed")
	}
	checkFileReads(t, f)

	// The strict sequential paths must still reject the file outright.
	if err := readAll(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sequential read of corrupt index: %v", err)
	}
}

func TestFileTruncatedIndexFallsBackToWalk(t *testing.T) {
	data := buildSnapshot(t, 9, fileSections...)
	// Rewrite the end marker to point the index past the file tail: the
	// index is unreachable, but the walk still serves every section.
	bad := append([]byte(nil), data...)
	off := len(bad) - endSize
	binary.BigEndian.PutUint64(bad[off+12:], uint64(len(bad)))
	fixEndCRC(bad, off)
	f, err := NewFile(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Indexed() {
		t.Fatal("unreachable index reported as indexed")
	}
	checkFileReads(t, f)
}

func TestFileSectionCRCVerifiedOnTouch(t *testing.T) {
	data := buildSnapshot(t, 9, fileSections...)
	// Flip one byte inside section kind 2's payload. Open must succeed
	// (no payload is read), the untouched section must read fine, and the
	// corrupt one must surface ErrCorrupt on first touch.
	bad := append([]byte(nil), data...)
	bad[headerSize+sectionHeadSize+len(fileSections[0].Payload)+4+sectionHeadSize+100] ^= 1
	f, err := NewFile(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Section(1); err != nil {
		t.Fatalf("untouched section: %v", err)
	}
	if _, err := f.Section(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt section on touch: %v", err)
	}
}

func TestFileLyingIndexDoesNotOverAllocate(t *testing.T) {
	data := buildSnapshot(t, 9, fileSections...)
	// Patch an index entry's length to a giant value, fixing the index
	// CRC so only the bounds checks can catch it. NewFile must reject the
	// index (entry overruns it) and fall back; the walk sees the real
	// sections, so nothing allocates beyond the file.
	bad := append([]byte(nil), data...)
	start, end := indexPayloadRange(t, bad)
	binary.BigEndian.PutUint64(bad[start+4+12:], 1<<60)
	var head [sectionHeadSize]byte
	copy(head[:], bad[start-sectionHeadSize:start])
	binary.BigEndian.PutUint32(bad[end:], sectionCRC(head, bad[start:end]))
	f, err := NewFile(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Indexed() {
		t.Fatal("lying index accepted")
	}
	checkFileReads(t, f)
}

func TestFileConcurrentSectionReads(t *testing.T) {
	data := buildSnapshot(t, 9, fileSections...)
	f, err := NewFile(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range fileSections {
				got, err := f.Section(s.Kind)
				if err != nil || !bytes.Equal(got, s.Payload) {
					t.Errorf("Section(%d): %v", s.Kind, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStreamingSectionMatchesBuffered(t *testing.T) {
	payload := bytes.Repeat([]byte{7, 1, 9}, 4321)
	var buffered, streamed bytes.Buffer
	w1, _ := NewWriter(&buffered, 5)
	if err := w1.Section(3, payload); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	w2, _ := NewWriter(&streamed, 5)
	dst, err := w2.BeginSection(3, uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(payload); i += 1000 {
		if _, err := dst.Write(payload[i:min(i+1000, len(payload))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.EndSection(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buffered.Bytes(), streamed.Bytes()) {
		t.Fatal("streamed bytes differ from buffered bytes")
	}
}

func TestStreamingSectionLengthEnforced(t *testing.T) {
	w, _ := NewWriter(io.Discard, 0)
	dst, err := w.BeginSection(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Write([]byte("12345")); err == nil {
		t.Fatal("overflow accepted")
	}

	w2, _ := NewWriter(io.Discard, 0)
	dst2, err := w2.BeginSection(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst2.Write([]byte("123")); err != nil {
		t.Fatal(err)
	}
	if err := w2.EndSection(); err == nil {
		t.Fatal("short section accepted")
	}

	w3, _ := NewWriter(io.Discard, 0)
	if _, err := w3.BeginSection(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(); err == nil {
		t.Fatal("Close with open streaming section accepted")
	}
}

func TestScanReportsVersionAndIndex(t *testing.T) {
	data := buildSnapshot(t, 3, Section{Kind: 1, Payload: []byte("x")})
	info, err := Scan(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != Version || !info.Indexed {
		t.Fatalf("version=%d indexed=%v", info.Version, info.Indexed)
	}
	if info.Sections[0].Offset != headerSize {
		t.Fatalf("offset = %d", info.Sections[0].Offset)
	}

	v1 := buildV1(3, Section{Kind: 1, Payload: []byte("x")})
	info, err = Scan(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != versionV1 || info.Indexed {
		t.Fatalf("v1: version=%d indexed=%v", info.Version, info.Indexed)
	}
	if info.Bytes != int64(len(v1)) {
		t.Fatalf("v1 Bytes = %d, file is %d", info.Bytes, len(v1))
	}
}
