package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

// buildSnapshot writes a small snapshot with the given sections.
func buildSnapshot(t *testing.T, epoch int64, sections ...Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sections {
		if err := w.Section(s.Kind, s.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Fatalf("Bytes() = %d, wrote %d", w.Bytes(), buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	sections := []Section{
		{Kind: 1, Payload: []byte("config")},
		{Kind: 2, Payload: bytes.Repeat([]byte{0xAB}, 3000)},
		{Kind: 7, Payload: nil}, // empty payloads are legal
	}
	data := buildSnapshot(t, 42, sections...)

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 42 {
		t.Fatalf("epoch = %d, want 42", r.Epoch())
	}
	for i, want := range sections {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("section %d: %v", i, err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("section %d: got kind %d len %d", i, got.Kind, len(got.Payload))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last section: %v, want io.EOF", err)
	}
	// Exhausted readers stay at EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("re-read after EOF: %v", err)
	}
}

func TestScan(t *testing.T) {
	data := buildSnapshot(t, 7, Section{Kind: 3, Payload: []byte("abc")}, Section{Kind: 9, Payload: []byte("defg")})
	info, err := Scan(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 7 {
		t.Fatalf("epoch = %d", info.Epoch)
	}
	if len(info.Sections) != 2 || info.Sections[0].Kind != 3 || info.Sections[1].Length != 4 {
		t.Fatalf("sections = %+v", info.Sections)
	}
	if info.Bytes != int64(len(data)) {
		t.Fatalf("Bytes = %d, file is %d", info.Bytes, len(data))
	}
}

func TestReservedKind(t *testing.T) {
	w, err := NewWriter(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section(EndKind, nil); err == nil {
		t.Fatal("kind 0 accepted")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	data := buildSnapshot(t, 0, Section{Kind: 1, Payload: []byte("x")})

	bad := append([]byte(nil), data...)
	copy(bad, "NOTASNAP")
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	bad = append([]byte(nil), data...)
	binary.BigEndian.PutUint32(bad[8:], Version+1)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: %v", err)
	}
}

// readAll pulls every section, returning the first error.
func readAll(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
	}
}

func TestTruncation(t *testing.T) {
	data := buildSnapshot(t, 1, Section{Kind: 1, Payload: bytes.Repeat([]byte{1}, 100)})
	// Every possible truncation point must error (wrapping ErrCorrupt),
	// never panic and never read as valid.
	for n := 0; n < len(data); n++ {
		if err := readAll(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", n, err)
		}
	}
	if err := readAll(data); err != nil {
		t.Fatalf("intact file: %v", err)
	}
}

func TestFlippedBytes(t *testing.T) {
	data := buildSnapshot(t, 1, Section{Kind: 1, Payload: []byte("hello, snapshot")})
	// Flipping any byte after the header must surface as ErrCorrupt: the
	// payload and the end marker are both CRC-framed, and the section
	// header is implicitly covered (a flipped kind/length desynchronizes
	// the stream into a CRC or truncation failure).
	for i := headerSize; i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if err := readAll(bad); err == nil {
			t.Fatalf("flip at byte %d read as valid", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestLyingLengthDoesNotOverAllocate(t *testing.T) {
	data := buildSnapshot(t, 1, Section{Kind: 1, Payload: []byte("tiny")})
	// Rewrite the section length to claim ~16 EiB. The reader must fail
	// with a truncation error after at most one chunk of allocation.
	bad := append([]byte(nil), data...)
	binary.BigEndian.PutUint64(bad[headerSize+4:], 1<<60)
	before := testing.AllocsPerRun(1, func() {
		if err := readAll(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("lying length: %v", err)
		}
	})
	_ = before // the run itself completing (no OOM) is the assertion
}

func TestWrongSectionCount(t *testing.T) {
	data := buildSnapshot(t, 1, Section{Kind: 1, Payload: []byte("a")}, Section{Kind: 2, Payload: []byte("b")})
	// Patch the end marker count from 2 to 3 and fix its CRC so only the
	// count check can catch it.
	bad := append([]byte(nil), data...)
	off := len(bad) - endSize
	binary.BigEndian.PutUint64(bad[off+4:], 3)
	fixEndCRC(bad, off)
	if err := readAll(bad); !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "counts 3") {
		t.Fatalf("wrong count: %v", err)
	}
}

// fixEndCRC recomputes the v2 end marker's CRC exactly as Close does.
func fixEndCRC(data []byte, off int) {
	binary.BigEndian.PutUint32(data[off+20:], crc32.ChecksumIEEE(data[off:off+20]))
}
