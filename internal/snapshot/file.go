package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// File is the random-access face of a snapshot: it opens by reading only
// the header and the section table — the trailing index when present and
// valid, a frame walk over section heads otherwise — and reads one
// payload per Section call with positioned reads. No payload byte is
// touched at open, which is what keeps a replica's cold start O(sections)
// instead of O(file size); payload CRCs are verified on first touch, so a
// lazily hydrated loader surfaces corruption as a clean error from the
// query that first needs the section.
//
// Safe for concurrent Section calls (io.ReaderAt is required to tolerate
// concurrent positioned reads, and os.File does).
type File struct {
	ra      io.ReaderAt
	size    int64
	closer  io.Closer
	epoch   int64
	version uint32
	indexed bool
	table   []SectionInfo
}

// Open opens a snapshot file for random access. The returned File keeps
// the descriptor open — lazily hydrated loaders read from it long after
// open — until Close.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sf, err := NewFile(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	sf.closer = f
	return sf, nil
}

// NewFile opens a snapshot over any positioned reader of the given size.
// A v2 file's index is loaded and validated; a v1 file, or a v2 file
// whose index is corrupt or unreachable, falls back to a sequential frame
// walk that reads only section heads (never payloads).
func NewFile(ra io.ReaderAt, size int64) (*File, error) {
	f := &File{ra: ra, size: size}
	var head [headerSize]byte
	if err := f.pread(head[:], 0); err != nil {
		return nil, fmt.Errorf("%w: header truncated: %v", ErrCorrupt, err)
	}
	if string(head[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:8])
	}
	f.version = binary.BigEndian.Uint32(head[8:])
	if f.version != Version && f.version != versionV1 {
		return nil, fmt.Errorf("%w: unsupported version %d (reader speaks %d and %d)", ErrCorrupt, f.version, versionV1, Version)
	}
	f.epoch = int64(binary.BigEndian.Uint64(head[16:]))
	if f.version == Version {
		if table, err := f.loadIndex(); err == nil {
			f.table, f.indexed = table, true
			return f, nil
		}
	}
	table, err := f.walk()
	if err != nil {
		return nil, err
	}
	f.table = table
	return f, nil
}

// Close releases the underlying descriptor when the File owns one (Open);
// section reads fail afterwards.
func (f *File) Close() error {
	if f.closer == nil {
		return nil
	}
	return f.closer.Close()
}

// Epoch returns the deployment epoch recorded in the header.
func (f *File) Epoch() int64 { return f.epoch }

// Version returns the file's format version (1 or 2).
func (f *File) Version() uint32 { return f.version }

// Indexed reports whether the section table came from a valid trailing
// index (false for v1 files and for v2 files opened via the fallback
// walk).
func (f *File) Indexed() bool { return f.indexed }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Sections returns the section table (a copy), in file order. Payload
// CRCs in a table built by the fallback walk are as recorded in the file,
// not yet verified — Section verifies on read.
func (f *File) Sections() []SectionInfo {
	return append([]SectionInfo(nil), f.table...)
}

// Has reports whether the file contains a section of the given kind.
func (f *File) Has(kind uint32) bool {
	for _, e := range f.table {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// Section reads, CRC-verifies and returns the payload of the first
// section of the given kind. Absent kinds return ErrNoSection; integrity
// failures (including an index entry that disagrees with the section it
// points at) wrap ErrCorrupt. The returned payload is owned by the
// caller. Safe for concurrent use.
func (f *File) Section(kind uint32) ([]byte, error) {
	for _, e := range f.table {
		if e.Kind == kind {
			return f.payload(e)
		}
	}
	return nil, fmt.Errorf("%w: kind %d", ErrNoSection, kind)
}

// payload reads and verifies one section's payload. The table entry was
// bounds-checked at open, so the allocation here is backed by real file
// bytes.
func (f *File) payload(e SectionInfo) ([]byte, error) {
	var head [sectionHeadSize]byte
	if err := f.pread(head[:], e.Offset); err != nil {
		return nil, fmt.Errorf("%w: section kind %d head: %v", ErrCorrupt, e.Kind, err)
	}
	if k := binary.BigEndian.Uint32(head[:]); k != e.Kind {
		return nil, fmt.Errorf("%w: table points kind %d at a kind-%d section", ErrCorrupt, e.Kind, k)
	}
	if l := binary.BigEndian.Uint64(head[4:]); l != e.Length {
		return nil, fmt.Errorf("%w: section kind %d is %d bytes, table says %d", ErrCorrupt, e.Kind, l, e.Length)
	}
	buf := make([]byte, e.Length+4)
	if err := f.pread(buf, e.Offset+sectionHeadSize); err != nil {
		return nil, fmt.Errorf("%w: section kind %d payload: %v", ErrCorrupt, e.Kind, err)
	}
	payload, tail := buf[:e.Length:e.Length], buf[e.Length:]
	stored := binary.BigEndian.Uint32(tail)
	if got := sectionCRC(head, payload); got != stored || stored != e.CRC {
		return nil, fmt.Errorf("%w: section kind %d CRC mismatch", ErrCorrupt, e.Kind)
	}
	return payload, nil
}

func (f *File) pread(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("read [%d, %d) outside %d-byte file", off, off+int64(len(p)), f.size)
	}
	_, err := f.ra.ReadAt(p, off)
	return err
}

// loadIndex resolves the trailing index of a v2 file: end marker → index
// offset → index section, each CRC-checked, every entry bounds-checked
// against the real file size so a lying index cannot cause reads or
// allocations beyond the file.
func (f *File) loadIndex() ([]SectionInfo, error) {
	if f.size < headerSize+endSize {
		return nil, fmt.Errorf("%w: %d-byte file has no room for an end marker", ErrCorrupt, f.size)
	}
	var end [endSize]byte
	if err := f.pread(end[:], f.size-endSize); err != nil {
		return nil, fmt.Errorf("%w: end marker: %v", ErrCorrupt, err)
	}
	if binary.BigEndian.Uint32(end[:]) != EndKind {
		return nil, fmt.Errorf("%w: no end marker at file tail", ErrCorrupt)
	}
	if got := binary.BigEndian.Uint32(end[20:]); got != crc32.ChecksumIEEE(end[:20]) {
		return nil, fmt.Errorf("%w: end marker CRC mismatch", ErrCorrupt)
	}
	count := binary.BigEndian.Uint64(end[4:])
	indexOff := int64(binary.BigEndian.Uint64(end[12:]))
	if indexOff < headerSize || indexOff > f.size-endSize-sectionHeadSize-4 {
		return nil, fmt.Errorf("%w: index offset %d outside file", ErrCorrupt, indexOff)
	}
	var head [sectionHeadSize]byte
	if err := f.pread(head[:], indexOff); err != nil {
		return nil, fmt.Errorf("%w: index head: %v", ErrCorrupt, err)
	}
	if binary.BigEndian.Uint32(head[:]) != IndexKind {
		return nil, fmt.Errorf("%w: no index at offset %d", ErrCorrupt, indexOff)
	}
	length := binary.BigEndian.Uint64(head[4:])
	if length > uint64(f.size-endSize-indexOff-sectionHeadSize-4) {
		return nil, fmt.Errorf("%w: index length %d outside file", ErrCorrupt, length)
	}
	buf := make([]byte, length+4)
	if err := f.pread(buf, indexOff+sectionHeadSize); err != nil {
		return nil, fmt.Errorf("%w: index payload: %v", ErrCorrupt, err)
	}
	payload, tail := buf[:length:length], buf[length:]
	if got := binary.BigEndian.Uint32(tail); got != sectionCRC(head, payload) {
		return nil, fmt.Errorf("%w: index CRC mismatch", ErrCorrupt)
	}
	entries, err := parseIndex(payload)
	if err != nil {
		return nil, err
	}
	if uint64(len(entries)) != count {
		return nil, fmt.Errorf("%w: index lists %d sections, end marker counts %d", ErrCorrupt, len(entries), count)
	}
	for _, e := range entries {
		if e.Offset+sectionHeadSize+int64(e.Length)+4 > indexOff {
			return nil, fmt.Errorf("%w: index entry kind %d overruns the index", ErrCorrupt, e.Kind)
		}
	}
	return entries, nil
}

// walk builds the section table sequentially from section heads alone —
// the open path for v1 files and the fallback for a corrupt v2 index. It
// validates framing and the end marker but reads no payload; payload CRCs
// are taken from the file and verified on first Section read.
func (f *File) walk() ([]SectionInfo, error) {
	var table []SectionInfo
	var payloads uint64
	off := int64(headerSize)
	for {
		var head [sectionHeadSize]byte
		if err := f.pread(head[:], off); err != nil {
			return nil, fmt.Errorf("%w: section header at %d: %v", ErrCorrupt, off, err)
		}
		kind := binary.BigEndian.Uint32(head[:])
		length := binary.BigEndian.Uint64(head[4:])
		if kind == EndKind {
			if err := f.walkEnd(head, length, off); err != nil {
				return nil, err
			}
			if length != payloads {
				return nil, fmt.Errorf("%w: end marker counts %d sections, walked %d", ErrCorrupt, length, payloads)
			}
			return table, nil
		}
		if room := f.size - off - sectionHeadSize - 4; room < 0 || length > uint64(room) {
			return nil, fmt.Errorf("%w: section kind %d length %d outside file", ErrCorrupt, kind, length)
		}
		var tail [4]byte
		if err := f.pread(tail[:], off+sectionHeadSize+int64(length)); err != nil {
			return nil, fmt.Errorf("%w: section kind %d CRC truncated: %v", ErrCorrupt, kind, err)
		}
		if kind != IndexKind {
			payloads++
			table = append(table, SectionInfo{
				Kind: kind, Offset: off, Length: length,
				CRC: binary.BigEndian.Uint32(tail[:]),
			})
		}
		off += sectionHeadSize + int64(length) + 4
	}
}

// walkEnd validates the version-appropriate end marker during a walk.
func (f *File) walkEnd(head [sectionHeadSize]byte, count uint64, off int64) error {
	if f.version == versionV1 {
		var tail [4]byte
		if err := f.pread(tail[:], off+sectionHeadSize); err != nil {
			return fmt.Errorf("%w: end marker truncated: %v", ErrCorrupt, err)
		}
		if got := binary.BigEndian.Uint32(tail[:]); got != crc32.ChecksumIEEE(head[:12]) {
			return fmt.Errorf("%w: end marker CRC mismatch", ErrCorrupt)
		}
		return nil
	}
	var tail [12]byte
	if err := f.pread(tail[:], off+sectionHeadSize); err != nil {
		return fmt.Errorf("%w: end marker truncated: %v", ErrCorrupt, err)
	}
	crc := crc32.ChecksumIEEE(head[:12])
	crc = crc32.Update(crc, crc32.IEEETable, tail[:8])
	if got := binary.BigEndian.Uint32(tail[8:]); got != crc {
		return fmt.Errorf("%w: end marker CRC mismatch", ErrCorrupt)
	}
	return nil
}
