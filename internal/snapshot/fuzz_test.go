package snapshot

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the container reader: any input
// must either parse fully or return an error — never panic, and never
// allocate proportionally to a lying length field (the run completing
// under the fuzzer's memory limits is the allocation assertion).
func FuzzReader(f *testing.F) {
	// Seed with a valid snapshot and a few structured mutants.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Section(1, []byte("config-payload"))
	_ = w.Section(2, bytes.Repeat([]byte{0x5A}, 600))
	_ = w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:headerSize+3])
	f.Add([]byte("SPVSNAP1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		total := 0
		for {
			s, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			total += len(s.Payload)
			if total > len(data) {
				t.Fatalf("decoded %d payload bytes from a %d-byte input", total, len(data))
			}
		}
	})
}

// FuzzScan mirrors FuzzReader through the inspection path.
func FuzzScan(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Section(4, []byte{1, 2, 3})
	_ = w.Close()
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := Scan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if info.Bytes <= 0 || info.Bytes > int64(len(data)) {
			t.Fatalf("Scan reports %d bytes of a %d-byte input", info.Bytes, len(data))
		}
	})
}
