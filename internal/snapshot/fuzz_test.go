package snapshot

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the container reader: any input
// must either parse fully or return an error — never panic, and never
// allocate proportionally to a lying length field (the run completing
// under the fuzzer's memory limits is the allocation assertion).
func FuzzReader(f *testing.F) {
	// Seed with a valid snapshot and a few structured mutants.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Section(1, []byte("config-payload"))
	_ = w.Section(2, bytes.Repeat([]byte{0x5A}, 600))
	_ = w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:headerSize+3])
	f.Add(buildV1(3, Section{Kind: 1, Payload: []byte("config-payload")}))
	f.Add([]byte("SPVSNAP1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		total := 0
		for {
			s, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			total += len(s.Payload)
			if total > len(data) {
				t.Fatalf("decoded %d payload bytes from a %d-byte input", total, len(data))
			}
		}
	})
}

// FuzzScan mirrors FuzzReader through the inspection path.
func FuzzScan(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Section(4, []byte{1, 2, 3})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add(buildV1(0, Section{Kind: 4, Payload: []byte{1, 2, 3}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := Scan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if info.Bytes <= 0 || info.Bytes > int64(len(data)) {
			t.Fatalf("Scan reports %d bytes of a %d-byte input", info.Bytes, len(data))
		}
	})
}

// FuzzFile drives the random-access path: arbitrary bytes must open via
// the index or the fallback walk (or error) — never panic — and every
// section read must be backed by real file bytes, so a lying index or
// length field cannot over-allocate. Seeds include a valid v2 file, its
// index-corrupted mutant (exercising the fallback walk), and a v1 file.
func FuzzFile(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 11)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Section(1, []byte("config"))
	_ = w.Section(5, bytes.Repeat([]byte{0x3C}, 900))
	_ = w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	mutant := append([]byte(nil), valid...)
	mutant[len(mutant)-30] ^= 0xFF // lands in the index or end marker
	f.Add(mutant)
	f.Add(buildV1(11, Section{Kind: 1, Payload: []byte("config")}))
	f.Add(valid[:headerSize+5])

	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := NewFile(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		total := 0
		for _, e := range sf.Sections() {
			payload, err := sf.Section(e.Kind)
			if err != nil {
				continue
			}
			total += len(payload)
			if total > len(data) {
				t.Fatalf("read %d payload bytes from a %d-byte input", total, len(data))
			}
		}
	})
}
