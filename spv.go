// Package spv is authenticated shortest path search: a Go implementation of
// "Efficient Verification of Shortest Path Search via Authenticated Hints"
// (Yiu, Lin, Mouratidis — ICDE 2010).
//
// # The problem
//
// A data owner (e.g. a transport authority) outsources its road network to
// third-party query services. Those services answer shortest path queries,
// but nothing stops a lazy, profit-driven or compromised service from
// returning sub-optimal or fabricated paths. This package makes every
// answer carry a cryptographic proof that the client can check against the
// owner's public key: the reported path exists, is untampered, and no
// shorter path exists.
//
// # The three parties
//
//	Owner     — holds the network and a private key; builds authenticated
//	            data structures (ADS) and hints, signs their roots.
//	Provider  — answers Query(vs, vt) with a path and a proof assembled
//	            from the ADS.
//	Client    — calls Verify* with the owner's public key; a nil error
//	            means the path is authentic AND optimal.
//
// # The four methods
//
//	DIJ   no pre-computation; proofs contain every node within the query
//	      distance (large proofs, zero hint cost).
//	FULL  all-pairs distances in a Merkle B-tree (minimal proofs,
//	      quadratic pre-computation — small networks only).
//	LDM   landmark distance vectors, quantized to b bits and compressed
//	      with reference nodes, embedded in the authenticated tuples.
//	HYP   a 2-level HiTi hyper-graph: grid cells plus materialized
//	      border-pair distances (the paper's preferred trade-off).
//
// # Quickstart
//
//	g, _ := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.05})
//	owner, _ := spv.NewOwner(g, spv.DefaultConfig())
//	provider, _ := owner.OutsourceLDM()
//	proof, _ := provider.Query(vs, vt)
//	err := spv.VerifyLDM(owner.Verifier(), vs, vt, proof) // nil ⇒ verified
//
// # Snapshots and replication
//
// A deployment persists to one versioned, CRC-checked file and loads
// back without recomputing a hash — outsource once, replicate many:
//
//	dep, _ := spv.NewDeployment(owner, spv.ServeOptions{}, spv.LDM)
//	spv.SaveSnapshot("world.spv", dep)                    // owner side
//	engine, set, _ := spv.LoadEngine("world.spv", spv.ServeOptions{})
//	srv, _ := spv.NewServerFromEngine(engine, set.Verifier) // replica side
//
// See ExampleSaveSnapshot / ExampleLoadEngine for executable versions,
// examples/ for runnable programs and DESIGN.md for the system map
// (§9 covers the snapshot format).
package spv

import (
	cryptorand "crypto/rand"
	"fmt"
	"os"
	"strings"

	"github.com/authhints/spv/internal/cert"
	"github.com/authhints/spv/internal/core"
	"github.com/authhints/spv/internal/digest"
	"github.com/authhints/spv/internal/estimate"
	"github.com/authhints/spv/internal/graph"
	"github.com/authhints/spv/internal/hints/landmark"
	"github.com/authhints/spv/internal/netgen"
	"github.com/authhints/spv/internal/order"
	"github.com/authhints/spv/internal/serve"
	"github.com/authhints/spv/internal/sig"
	"github.com/authhints/spv/internal/sp"
	"github.com/authhints/spv/internal/workload"
)

// Graph is a weighted spatial road network with undirected edges.
type Graph = graph.Graph

// NodeID identifies a network node (junction).
type NodeID = graph.NodeID

// Path is a sequence of nodes claimed to form a walk in the network.
type Path = graph.Path

// Edge is one directed half of an undirected road segment.
type Edge = graph.Edge

// NewGraph returns an empty graph with capacity for n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Owner is the data owner: network + private key + ADS construction.
// Outsource* and WriteSnapshot may run concurrently with provider
// queries, but not with ApplyUpdates, which mutates the owner's network
// (Deployment serializes this for you).
type Owner = core.Owner

// Config carries the owner's ADS and hint parameters.
type Config = core.Config

// Method names one of the four verification methods.
type Method = core.Method

// The four verification methods of the paper.
const (
	DIJ  = core.DIJ
	FULL = core.FULL
	LDM  = core.LDM
	HYP  = core.HYP
)

// Methods lists the registered methods in the method registry's
// canonical order (the paper's presentation order for the built-ins).
func Methods() []Method { return core.Methods() }

// Provider is the method-erased face of a service provider: immutable,
// safe for unbounded concurrent QueryProof use, byte-deterministic per
// (vs, vt). Owner.Outsource returns one; every serving surface (engines,
// deployments, snapshots) dispatches through it.
type Provider = core.Provider

// Proof is the method-erased face of a query proof: exact wire encoding
// (AppendBinary), communication breakdown (Stats) and the reported
// path/distance (Result). Decode with DecodeProof, check with
// VerifyProof.
type Proof = core.Proof

// DecodeProof parses a proof wire encoding of method m via the method
// registry, returning the proof and the bytes consumed. The typed
// Decode<Method>Proof functions remain for callers that need concrete
// proof structs.
func DecodeProof(m Method, buf []byte) (Proof, int, error) {
	return core.DecodeProof(m, buf)
}

// VerifyProof client-verifies a proof of method m against the owner's
// public key via the method registry; a nil error means the reported
// path is authentic and optimal.
func VerifyProof(v *Verifier, m Method, vs, vt NodeID, p Proof) error {
	return core.VerifyProof(v, m, vs, vt, p)
}

// BatchItem pairs one query's endpoints with its proof for batch
// verification. Items may repeat (vs, vt, proof) — VerifyBatch verifies
// each distinct item once and shares the verdict.
type BatchItem = core.BatchItem

// VerifyBatch client-verifies a batch of proofs of one method, returning
// one verdict per item (nil ⇒ authentic and optimal). Verdicts are
// accept/reject-equivalent to calling VerifyProof per item, but proofs
// from one epoch share the expensive work: each distinct root signature is
// checked once and overlapping Merkle authentication paths reconstruct as
// one merged partial tree. See DESIGN.md §12.
func VerifyBatch(v *Verifier, m Method, items []BatchItem) []error {
	return core.VerifyBatch(v, m, items)
}

// ProofBatch is a decoded shared-encoding proof blob (the /batch
// "encoding":"shared" transport): many proofs of one method with
// signatures and tuple bytes stored once. Items() feeds VerifyBatch.
type ProofBatch = core.ProofBatch

// AppendProofBatch encodes proofs of one method into the shared batch
// wire form, deduplicating signatures, tuple records and whole repeated
// proofs across the batch.
func AppendProofBatch(buf []byte, m Method, items []BatchItem) ([]byte, error) {
	return core.AppendProofBatch(buf, m, items)
}

// DecodeProofBatch parses a shared batch encoding, returning the batch and
// the bytes consumed. The encoding is canonical: decode → re-encode is
// byte-identity.
func DecodeProofBatch(buf []byte) (*ProofBatch, int, error) {
	return core.DecodeProofBatch(buf)
}

// DefaultConfig mirrors the paper's default setting (Table II), with the
// landmark count scaled for the 1/10-scale synthetic datasets.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewOwner validates the graph and configuration and generates the owner's
// key pair.
func NewOwner(g *Graph, cfg Config) (*Owner, error) { return core.NewOwner(g, cfg) }

// Signer is the owner's private key half.
type Signer = sig.Signer

// Verifier is the owner's public key half, held by clients.
type Verifier = sig.Verifier

// GenerateOwnerKey creates a fresh owner key pair of the given modulus size
// for deployments that persist keys across processes (PEM via
// Signer.MarshalPEM / ParseSignerPEM).
func GenerateOwnerKey(bits int) (*Signer, error) {
	return sig.GenerateKey(cryptorand.Reader, bits)
}

// NewOwnerWithSigner builds an owner around a persisted key pair.
func NewOwnerWithSigner(g *Graph, cfg Config, s *Signer) (*Owner, error) {
	return core.NewOwnerWithSigner(g, cfg, s)
}

// ParseSignerPEM decodes an owner private key written by Signer.MarshalPEM.
func ParseSignerPEM(data []byte) (*Signer, error) { return sig.ParseSignerPEM(data) }

// ParseVerifierPEM decodes an owner public key written by
// Verifier.MarshalPEM.
func ParseVerifierPEM(data []byte) (*Verifier, error) { return sig.ParseVerifierPEM(data) }

// Provider/proof pairs, one per method. Every provider is immutable once
// outsourced (or loaded from a snapshot): Query is safe for unbounded
// concurrent use with no locking, and a given (vs, vt) always yields one
// byte-identical proof encoding. Proof values returned by Query are owned
// by the caller.
type (
	// DIJProvider answers queries under Dijkstra subgraph verification.
	DIJProvider = core.DIJProvider
	// DIJProof is a DIJ answer: path + subgraph ΓS + integrity ΓT.
	DIJProof = core.DIJProof
	// FULLProvider answers queries from materialized all-pairs distances.
	FULLProvider = core.FULLProvider
	// FULLProof is a FULL answer: path + distance VO + path integrity.
	FULLProof = core.FULLProof
	// LDMProvider answers queries under landmark-based verification.
	LDMProvider = core.LDMProvider
	// LDMProof is an LDM answer: path + Lemma 2 subgraph + integrity.
	LDMProof = core.LDMProof
	// HYPProvider answers queries under hyper-graph verification.
	HYPProvider = core.HYPProvider
	// HYPProof is a HYP answer: path + coarse/fine proofs + hyper-edges.
	HYPProof = core.HYPProof
)

// ProofStats is the communication breakdown of a proof (ΓS vs ΓT bytes and
// item counts), matching the paper's reporting.
type ProofStats = core.ProofStats

// Client-side verification. A nil error means the reported path is
// authentic and optimal; all rejections wrap ErrRejected.
func VerifyDIJ(v *Verifier, vs, vt NodeID, p *DIJProof) error {
	return core.VerifyDIJ(v, vs, vt, p)
}

// VerifyFULL verifies a FULL proof.
func VerifyFULL(v *Verifier, vs, vt NodeID, p *FULLProof) error {
	return core.VerifyFULL(v, vs, vt, p)
}

// VerifyLDM verifies an LDM proof.
func VerifyLDM(v *Verifier, vs, vt NodeID, p *LDMProof) error {
	return core.VerifyLDM(v, vs, vt, p)
}

// VerifyHYP verifies a HYP proof.
func VerifyHYP(v *Verifier, vs, vt NodeID, p *HYPProof) error {
	return core.VerifyHYP(v, vs, vt, p)
}

// Proof wire formats: every proof type serializes with AppendBinary and
// parses back with the matching Decode function, returning the proof and
// the number of bytes consumed. Reported proof sizes are exact sizes of
// these encodings.

// DecodeDIJProof parses a serialized DIJ proof.
func DecodeDIJProof(buf []byte) (*DIJProof, int, error) { return core.DecodeDIJProof(buf) }

// DecodeFULLProof parses a serialized FULL proof.
func DecodeFULLProof(buf []byte) (*FULLProof, int, error) { return core.DecodeFULLProof(buf) }

// DecodeLDMProof parses a serialized LDM proof.
func DecodeLDMProof(buf []byte) (*LDMProof, int, error) { return core.DecodeLDMProof(buf) }

// DecodeHYPProof parses a serialized HYP proof.
func DecodeHYPProof(buf []byte) (*HYPProof, int, error) { return core.DecodeHYPProof(buf) }

// Verification failure classes (all wrap ErrRejected).
var (
	ErrRejected        = core.ErrRejected
	ErrBadSignature    = core.ErrBadSignature
	ErrIncompleteProof = core.ErrIncompleteProof
	ErrPathMismatch    = core.ErrPathMismatch
	ErrNotShortest     = core.ErrNotShortest
	ErrMalformedProof  = core.ErrMalformedProof
)

// Hash algorithms for the authenticated structures.
const (
	SHA1   = digest.SHA1
	SHA256 = digest.SHA256
)

// OrderMethod names a graph-node ordering for the Merkle leaf layout.
type OrderMethod = order.Method

// Graph-node orderings for the Merkle leaf layout (paper §III-B, Fig 10).
const (
	OrderBFS     = order.BFS
	OrderDFS     = order.DFS
	OrderHilbert = order.Hilbert
	OrderKD      = order.KD
	OrderRandom  = order.Random
)

// Landmark selection strategies for LDM.
const (
	LandmarksFarthest = landmark.Farthest
	LandmarksRandom   = landmark.RandomSel
)

// Dataset names one of the paper's four road networks (synthesized to the
// documented DCW shapes — see DESIGN.md §3).
type Dataset = netgen.Dataset

// The paper's four datasets.
const (
	DE  = netgen.DE
	ARG = netgen.ARG
	IND = netgen.IND
	NA  = netgen.NA
)

// Datasets lists the four datasets in size order.
func Datasets() []Dataset { return netgen.Datasets() }

// NetworkConfig controls dataset synthesis.
type NetworkConfig = netgen.Config

// GenerateNetwork synthesizes a named dataset (connected, normalized to
// [0..10,000]²).
func GenerateNetwork(d Dataset, cfg NetworkConfig) (*Graph, error) {
	return netgen.Generate(d, cfg)
}

// SynthesizeNetwork builds a road-like network with explicit node and edge
// counts.
func SynthesizeNetwork(nodes, edges int, seed int64) (*Graph, error) {
	return netgen.Synthesize(nodes, edges, seed)
}

// BuildNetwork resolves the network flags shared by the CLI tools
// (spvserve, spvsnap): a positive nodes count synthesizes (edges
// defaulting to nodes + nodes/20), otherwise dataset names one of the
// paper's four networks, generated at scale. One definition keeps every
// tool's "-dataset DE -scale 0.05" the same world.
func BuildNetwork(dataset string, scale float64, nodes, edges int, seed int64) (*Graph, error) {
	if nodes > 0 {
		if edges <= 0 {
			edges = nodes + nodes/20
		}
		return SynthesizeNetwork(nodes, edges, seed)
	}
	for _, d := range Datasets() {
		if strings.EqualFold(string(d), dataset) {
			return GenerateNetwork(d, NetworkConfig{Scale: scale, Seed: seed})
		}
	}
	return nil, fmt.Errorf("spv: unknown dataset %q (want one of %v)", dataset, Datasets())
}

// Query is one shortest path query with its ground-truth distance.
type Query = workload.Query

// GenerateWorkload builds count queries whose shortest path distances
// approximate queryRange (the paper's workload construction, §VI-A).
func GenerateWorkload(g *Graph, count int, queryRange float64, seed int64) ([]Query, error) {
	return workload.Generate(g, count, queryRange, seed)
}

// ShortestPath computes an exact shortest path with Dijkstra's algorithm —
// the trusted-oracle view of the network, useful for tests and baselines.
func ShortestPath(g *Graph, vs, vt NodeID) (float64, Path) {
	return sp.DijkstraTo(g, vs, vt)
}

// Provider serving layer: a thread-safe, batched query engine with an LRU
// proof cache and singleflight deduplication, plus the HTTP front-end used
// by cmd/spvserve. See internal/serve and DESIGN.md §7.

// ServeQuery is one query against a serving engine.
type ServeQuery = serve.Query

// ServeAnswer is the engine's reply: distance, hop count, and the proof's
// exact wire encoding (decodable with Decode<Method>Proof).
type ServeAnswer = serve.Answer

// ServeOptions configures the engine's worker pool and proof cache.
type ServeOptions = serve.Options

// ServeStats is a snapshot of an engine's hit/miss/dedup counters.
type ServeStats = serve.Snapshot

// QueryEngine is the concurrent, batched provider front-end.
type QueryEngine = serve.Engine

// Server exposes a QueryEngine over HTTP (/query, /batch, /verifier,
// /stats, and — when wired — /update, /snapshot). Immutable after
// construction and Enable* wiring; safe for any number of concurrent
// requests.
type Server = serve.Server

// ErrUnknownMethod reports a query for a method an engine does not serve.
var ErrUnknownMethod = serve.ErrUnknownMethod

// NewEngine outsources each requested method from the owner via the
// method registry and wraps the resulting providers in a concurrent
// query engine. With no methods given it serves every registered method
// (note FULL's quadratic pre-computation).
func NewEngine(o *Owner, opts ServeOptions, methods ...Method) (*QueryEngine, error) {
	if len(methods) == 0 {
		methods = Methods()
	}
	e := serve.NewEngine(opts)
	for _, m := range methods {
		p, err := o.Outsource(m)
		if err != nil {
			return nil, err
		}
		e.Register(p)
	}
	return e, nil
}

// NewRawEngine returns an engine with no providers attached; wire up
// already-outsourced providers with its Register method. Most callers
// want NewEngine, which outsources for you.
func NewRawEngine(opts ServeOptions) *QueryEngine { return serve.NewEngine(opts) }

// Incremental updates: the owner applies edge re-weightings without a full
// re-outsource — two probe Dijkstras bound which hint/distance rows can
// change, only those re-run, and only the dirty Merkle paths rehash. The
// resulting roots, signatures and proofs are byte-identical to a
// from-scratch re-outsource (with the landmark placement pinned). See
// DESIGN.md §8.

// EdgeUpdate re-weights one existing road segment.
type EdgeUpdate = core.EdgeUpdate

// UpdateBatch carries the owner-side dirty sets of one applied batch; its
// Patch* methods derive updated providers copy-on-write.
type UpdateBatch = core.UpdateBatch

// PatchStats reports what one provider patch rewrote.
type PatchStats = core.PatchStats

// Deployment couples an owner, its providers and a serving engine,
// keeping them in sync under edge-weight updates via atomic hot-swaps.
// Safe for concurrent use: ApplyUpdates and Save serialize against each
// other, while queries through the engine never block on either.
type Deployment = serve.Deployment

// UpdateSummary reports one end-to-end Deployment update batch.
type UpdateSummary = serve.UpdateSummary

// NewDeployment outsources each requested method and returns the
// update-capable owner+engine bundle. With no methods given it serves all
// four (note FULL's quadratic pre-computation).
func NewDeployment(o *Owner, opts ServeOptions, methods ...Method) (*Deployment, error) {
	return serve.NewDeployment(o, opts, methods...)
}

// NewServerFromEngine wraps an already-built engine and the owner's public
// verifier in the HTTP daemon surface; pair with NewDeployment when the
// engine must stay hot-swappable under updates.
func NewServerFromEngine(e *QueryEngine, v *Verifier) (*Server, error) {
	return serve.NewServer(e, v)
}

// NewUpdatableServer builds the HTTP daemon surface around a deployment:
// proofs, the owner's public key, engine stats (graph epoch, last-update
// latency) and the owner-side POST /update endpoint.
func NewUpdatableServer(d *Deployment) (*Server, error) {
	s, err := serve.NewServer(d.Engine(), d.Owner().Verifier())
	if err != nil {
		return nil, err
	}
	s.EnableUpdates(d)
	return s, nil
}

// NewServer builds the full provider daemon surface: outsourced providers,
// query engine, and the HTTP handler that serves proofs and the owner's
// public key. The server never holds the owner's private key.
func NewServer(o *Owner, opts ServeOptions, methods ...Method) (*Server, error) {
	e, err := NewEngine(o, opts, methods...)
	if err != nil {
		return nil, err
	}
	return serve.NewServer(e, o.Verifier())
}

// Persistent snapshots: a deployment serializes to one versioned,
// CRC-checked file (graph, config, every provider's Merkle trees with
// precomputed digests, hint rows, signatures, update epoch), and loads
// back without recomputing a single hash — the publish-once /
// replicate-many shape: one owner writes a snapshot, N replicas cold-start
// from it and serve identical proofs. See DESIGN.md §9 for the format.

// ProviderSet is a complete deserialized deployment: providers (nil for
// absent methods), the owner's public key, config, graph and update
// epoch. Loaded providers are immutable and safe for unbounded concurrent
// Query use, exactly like freshly outsourced ones.
type ProviderSet = core.ProviderSet

// SnapshotResult reports one completed snapshot save (path, bytes, epoch,
// latency).
type SnapshotResult = serve.SnapshotResult

// SnapshotFunc performs one snapshot save; wire into a Server with
// EnableSnapshot to open POST /snapshot. Implementations must be safe for
// concurrent use.
type SnapshotFunc = serve.SnapshotFunc

// FileSnapshot returns a SnapshotFunc that saves d to path atomically
// (temp file + rename); each call takes its own consistent cut against
// concurrent updates.
func FileSnapshot(d *Deployment, path string) SnapshotFunc {
	return serve.FileSnapshot(d, path)
}

// SaveSnapshot writes a deployment's complete state to path atomically
// (via a temp file + rename, so concurrent readers never see a torn
// file), returning the bytes written. The save is a consistent cut: it
// serializes against ApplyUpdates, while queries keep flowing.
func SaveSnapshot(path string, d *Deployment) (int64, error) {
	res, err := serve.FileSnapshot(d, path)()
	return res.Bytes, err
}

// LoadProviderSet loads a snapshot file into ready-to-serve providers —
// no hash recomputed, no search re-run; tuple encodings and derived hint
// state are rebuilt in parallel from the stored truth. The caller owns
// the set and may wrap it in any number of engines.
func LoadProviderSet(path string) (*ProviderSet, error) { return core.OpenProviderSet(path) }

// LoadProviderSetLazy opens a snapshot for lazy serving: the core
// sections (config, graph, verifier, ordering) load now, and each method
// section is read, CRC-checked and decoded on its first query. On large
// worlds this turns a replica cold start from O(file) into O(core
// sections), and methods nobody queries stay on disk. Proofs are
// byte-identical to an eager load's. The set holds the file open for
// on-demand reads — Close it when done; methods hydrated before Close
// keep serving.
func LoadProviderSetLazy(path string) (*ProviderSet, error) {
	return core.OpenProviderSetLazy(path)
}

// LoadEngine cold-starts a replica from a snapshot file: the loaded
// providers are registered on a fresh engine whose epoch counter reports
// the snapshot's data epoch. The returned set carries the verifier to
// serve clients (NewServerFromEngine) and the graph/config an owner
// process would need. The engine is ready to share across goroutines.
func LoadEngine(path string, opts ServeOptions) (*QueryEngine, *ProviderSet, error) {
	set, err := core.OpenProviderSet(path)
	if err != nil {
		return nil, nil, err
	}
	return serve.EngineFromSet(set, opts), set, nil
}

// LoadEngineLazy is LoadEngine over LoadProviderSetLazy: the replica
// starts answering queries after loading only the core sections, and
// method payloads hydrate from the file as traffic touches them. The
// first query per method pays its section's read+decode; everything
// after serves from memory at eager speed.
func LoadEngineLazy(path string, opts ServeOptions) (*QueryEngine, *ProviderSet, error) {
	set, err := core.OpenProviderSetLazy(path)
	if err != nil {
		return nil, nil, err
	}
	return serve.EngineFromSet(set, opts), set, nil
}

// NewEngineFromSet wraps an already-loaded provider set in a query
// engine; use when one loaded set backs several engines (e.g. per-tenant
// cache budgets over shared immutable providers).
func NewEngineFromSet(set *ProviderSet, opts ServeOptions) *QueryEngine {
	return serve.EngineFromSet(set, opts)
}

// LoadDeployment resumes an update-capable deployment from a snapshot
// file plus the owner's persisted private key (which never enters a
// snapshot): the owner continues at the stored epoch and subsequent
// ApplyUpdates batches behave exactly as if the process had never
// restarted. The key's public half must match the snapshot's embedded
// verifier. Key-less replicas use LoadEngine instead.
func LoadDeployment(path string, signer *Signer, opts ServeOptions) (*Deployment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return serve.LoadDeployment(f, signer, opts)
}

// Snapshot certificates: the owner signs one compact certificate over a
// deployment's complete outsourced state (per-method labellings or hint
// rows plus every Merkle commitment), and a replica audits its loaded
// snapshot against it in one linear pass — triangle-inequality, parent-
// edge and digest-fold checks, no per-row Dijkstra — before serving. See
// internal/cert and DESIGN.md §14.

// Certificate is an owner-signed snapshot certificate covering one or
// more methods at one update epoch.
type Certificate = cert.Certificate

// AuditReport is the structured outcome of one certificate audit: global
// failure (if any), per-method results, and methods the snapshot serves
// that the certificate does not cover. OK() reports a clean audit; Err()
// the first failure in audit order.
type AuditReport = cert.Report

// Certificate audit failure classes (all wrap ErrAudit).
var (
	ErrAudit              = cert.ErrAudit
	ErrAuditDistance      = cert.ErrDistance
	ErrAuditParent        = cert.ErrParent
	ErrAuditDigest        = cert.ErrRowDigest
	ErrAuditSignature     = cert.ErrSignature
	ErrAuditEncoding      = cert.ErrEncoding
	ErrAuditEpoch         = cert.ErrEpochMismatch
	ErrAuditMethodMissing = cert.ErrMethodMissing
)

// Certify issues the owner's snapshot certificate over the given
// outsourced providers (every provider must come from this owner at its
// current epoch). Attach it to snapshots via Deployment.Certify +
// SaveSnapshot, or ship it out of band alongside the certificate-less
// file.
func Certify(o *Owner, provs ...Provider) (*Certificate, error) {
	return o.Certify(provs...)
}

// Audit checks a loaded provider set against a certificate in one linear
// pass per covered method and returns the structured report; use the
// report's Err()/OK() for a verdict. v is the owner's public key (use
// set.Verifier for the snapshot's embedded one — callers distrusting the
// file should pass an out-of-band copy).
func Audit(set *ProviderSet, c *Certificate, v *Verifier) *AuditReport {
	return cert.Audit(set, c, v)
}

// AuditSnapshot opens the snapshot at path lazily, audits it against its
// embedded certificate with its embedded verifier, and reports. Sections
// the audit never touches stay on disk. A snapshot without a CERT section
// is an error — auditing nothing proves nothing.
func AuditSnapshot(path string) (*AuditReport, error) {
	set, err := LoadProviderSetLazy(path)
	if err != nil {
		return nil, err
	}
	defer set.Close()
	c, err := set.Certificate()
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("spv: snapshot %s carries no certificate (write one with Deployment.Certify before saving)", path)
	}
	return cert.Audit(set, c, set.Verifier), nil
}

// Calibration holds measured network constants for proof-size estimation
// (the paper's §VII future-work direction, implemented in this repo).
type Calibration = estimate.Calibration

// SizeEstimate is a predicted proof-size breakdown.
type SizeEstimate = estimate.Estimate

// Calibrate samples the network to extract the constants proof sizes
// depend on (density, detour factor, degree, tuple size).
func Calibrate(g *Graph, samples int, seed int64) (Calibration, error) {
	return estimate.Calibrate(g, samples, seed)
}

// PredictProofSize estimates a method's communication overhead at a query
// range without building any ADS — for method selection and bandwidth
// budgeting. Expect agreement within a small constant factor (×3 enforced
// by the test suite).
func PredictProofSize(c Calibration, m Method, queryRange float64, cfg Config) (SizeEstimate, error) {
	return estimate.Predict(c, m, queryRange, cfg)
}
