// Benchmarks regenerating the paper's evaluation (ICDE 2010, §VI): one
// testing.B benchmark per figure/table, plus per-method micro-benchmarks of
// the provider (proof generation) and client (verification) hot paths.
//
// The figure benchmarks run the full harness once per iteration and report
// the headline series as custom metrics, so `go test -bench=. -benchmem`
// regenerates the entire evaluation. Absolute times are hardware-bound; the
// shapes (who wins, growth trends) are the reproduction targets — see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Figure benchmarks use a reduced default (scale 0.05, 30 queries) to keep
// a full `go test -bench=.` run in minutes on one core; run cmd/spvbench
// for the full-scale tables.
package spv_test

import (
	"fmt"
	"testing"

	spv "github.com/authhints/spv"
	"github.com/authhints/spv/internal/bench"
)

// figSetup is the benchmark-sized experiment setting.
func figSetup() bench.Setup {
	s := bench.DefaultSetup()
	s.Scale = 0.05
	s.Queries = 30
	return s
}

// runFigure executes one harness figure per iteration and reports its first
// row's headline value as a metric.
func runFigure(b *testing.B, id string, metric string, col int) {
	b.Helper()
	s := figSetup()
	for i := 0; i < b.N; i++ {
		table, err := bench.Run(id, s)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) > 0 && col < len(table.Rows[0].Values) {
			b.ReportMetric(table.Rows[0].Values[col], metric)
		}
	}
}

// --- one benchmark per paper figure/table ---

func BenchmarkTable2Parameters(b *testing.B)   { runFigure(b, "table2", "scale", 0) }
func BenchmarkFig08aCommOverhead(b *testing.B) { runFigure(b, "fig8a", "DIJ-total-KB", 2) }
func BenchmarkFig08bProofItems(b *testing.B)   { runFigure(b, "fig8b", "DIJ-items", 2) }
func BenchmarkFig08cConstruction(b *testing.B) { runFigure(b, "fig8c", "FULL-sec", 0) }
func BenchmarkFig09aDatasets(b *testing.B)     { runFigure(b, "fig9a", "DE-DIJ-KB", 0) }
func BenchmarkFig09bDatasetBuild(b *testing.B) { runFigure(b, "fig9b", "DE-FULL-sec", 0) }
func BenchmarkFig10Orderings(b *testing.B)     { runFigure(b, "fig10", "bfs-DIJ-KB", 0) }
func BenchmarkFig11aFanout(b *testing.B)       { runFigure(b, "fig11a", "f2-DIJ-KB", 0) }
func BenchmarkFig11bQueryRange(b *testing.B)   { runFigure(b, "fig11b", "r250-DIJ-KB", 0) }
func BenchmarkFig12aLandmarksComm(b *testing.B) {
	runFigure(b, "fig12a", "c50-total-KB", 2)
}
func BenchmarkFig12bLandmarksBuild(b *testing.B) {
	runFigure(b, "fig12b", "c50-sec", 0)
}
func BenchmarkFig13aCellsComm(b *testing.B)  { runFigure(b, "fig13a", "p25-total-KB", 2) }
func BenchmarkFig13bCellsBuild(b *testing.B) { runFigure(b, "fig13b", "p25-sec", 0) }
func BenchmarkVerifyLatency(b *testing.B)    { runFigure(b, "verify", "DIJ-client-ms", 1) }
func BenchmarkExtAQuantBits(b *testing.B)    { runFigure(b, "extA", "b4-total-KB", 1) }
func BenchmarkExtBCompression(b *testing.B)  { runFigure(b, "extB", "xi0-total-KB", 1) }

// --- per-method micro-benchmarks: provider and client hot paths ---

type microWorld struct {
	g    *spv.Graph
	v    *spv.Verifier
	dij  *spv.DIJProvider
	full *spv.FULLProvider
	ldm  *spv.LDMProvider
	hyp  *spv.HYPProvider
	qs   []spv.Query
}

var micro *microWorld

func microSetup(b *testing.B) *microWorld {
	b.Helper()
	if micro != nil {
		return micro
	}
	g, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	owner, err := spv.NewOwner(g, spv.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := &microWorld{g: g, v: owner.Verifier()}
	if m.dij, err = owner.OutsourceDIJ(); err != nil {
		b.Fatal(err)
	}
	if m.full, err = owner.OutsourceFULL(); err != nil {
		b.Fatal(err)
	}
	if m.ldm, err = owner.OutsourceLDM(); err != nil {
		b.Fatal(err)
	}
	if m.hyp, err = owner.OutsourceHYP(); err != nil {
		b.Fatal(err)
	}
	if m.qs, err = spv.GenerateWorkload(g, 16, 4000, 9); err != nil {
		b.Fatal(err)
	}
	micro = m
	return m
}

func BenchmarkProviderQuery(b *testing.B) {
	m := microSetup(b)
	for _, method := range spv.Methods() {
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := m.qs[i%len(m.qs)]
				var err error
				switch method {
				case spv.DIJ:
					_, err = m.dij.Query(q.S, q.T)
				case spv.FULL:
					_, err = m.full.Query(q.S, q.T)
				case spv.LDM:
					_, err = m.ldm.Query(q.S, q.T)
				case spv.HYP:
					_, err = m.hyp.Query(q.S, q.T)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClientVerify(b *testing.B) {
	m := microSetup(b)
	q := m.qs[0]
	dp, err := m.dij.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := m.full.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	lp, err := m.ldm.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	hp, err := m.hyp.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DIJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyDIJ(m.v, q.S, q.T, dp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FULL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyFULL(m.v, q.S, q.T, fp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LDM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyLDM(m.v, q.S, q.T, lp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HYP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyHYP(m.v, q.S, q.T, hp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// microBatch builds a 64-proof single-root response for one method by
// cycling the workload pool — the shape of real /batch traffic, where
// queries repeat — and round-trips it through the shared batch wire, so
// the items are exactly what a client decodes: repeated answers share one
// proof pointer, record bytes share the table backing.
func microBatch(b *testing.B, m *microWorld, method spv.Method) []spv.BatchItem {
	b.Helper()
	var p spv.Provider
	switch method {
	case spv.DIJ:
		p = m.dij
	case spv.FULL:
		p = m.full
	case spv.LDM:
		p = m.ldm
	case spv.HYP:
		p = m.hyp
	default:
		b.Fatalf("unknown method %s", method)
	}
	items := make([]spv.BatchItem, 0, 64)
	for i := 0; i < 64; i++ {
		q := m.qs[i%len(m.qs)]
		pr, err := p.QueryProof(q.S, q.T)
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, spv.BatchItem{VS: q.S, VT: q.T, Proof: pr})
	}
	wire, err := spv.AppendProofBatch(nil, method, items)
	if err != nil {
		b.Fatal(err)
	}
	pb, _, err := spv.DecodeProofBatch(wire)
	if err != nil {
		b.Fatal(err)
	}
	return pb.Items()
}

// BenchmarkVerifySingle64 is the baseline lane for the batch-verify gate:
// 64 proofs of one epoch verified one at a time. Compare against
// BenchmarkVerifyBatch64 — the batch lane must be ≥3× faster per response.
func BenchmarkVerifySingle64(b *testing.B) {
	m := microSetup(b)
	for _, method := range spv.Methods() {
		items := microBatch(b, m, method)
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					if err := spv.VerifyProof(m.v, method, it.VS, it.VT, it.Proof); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkVerifyBatch64 verifies the same 64-proof response in one
// VerifyBatch call: one signature check per signed root, each shared
// Merkle digest hashed once, pooled search state.
func BenchmarkVerifyBatch64(b *testing.B) {
	m := microSetup(b)
	for _, method := range spv.Methods() {
		items := microBatch(b, m, method)
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, err := range spv.VerifyBatch(m.v, method, items) {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- serving layer: throughput and cache amortization ---

// serveEngine builds one engine over the shared micro world's providers.
func serveEngine(b *testing.B, opts spv.ServeOptions) *spv.QueryEngine {
	b.Helper()
	m := microSetup(b)
	e := spv.NewRawEngine(opts)
	for _, p := range []spv.Provider{m.dij, m.full, m.ldm, m.hyp} {
		e.Register(p)
	}
	return e
}

// BenchmarkServeQPS measures end-to-end engine throughput (proof served per
// op, qps metric) under parallel load with a mixed repeated-query workload
// — the serving layer's headline number.
func BenchmarkServeQPS(b *testing.B) {
	for _, method := range []spv.Method{spv.FULL, spv.LDM, spv.HYP} {
		b.Run(string(method), func(b *testing.B) {
			m := microSetup(b)
			e := serveEngine(b, spv.ServeOptions{})
			// Warm the cache so the steady state measures serving, not the
			// first cold constructions.
			for _, q := range m.qs {
				if _, err := e.Query(spv.ServeQuery{Method: method, VS: q.S, VT: q.T}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := m.qs[i%len(m.qs)]
					i++
					if _, err := e.Query(spv.ServeQuery{Method: method, VS: q.S, VT: q.T}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "qps")
			}
		})
	}
}

// BenchmarkServeColdVsCached quantifies the proof cache: "cold" disables
// caching so every op pays full proof construction; "cached" serves the
// same query out of the LRU. The cached lane must be ≥ 5× faster — run
// both and compare ns/op.
func BenchmarkServeColdVsCached(b *testing.B) {
	m := microSetup(b)
	q := spv.ServeQuery{Method: spv.LDM, VS: m.qs[0].S, VT: m.qs[0].T}
	b.Run("cold", func(b *testing.B) {
		e := serveEngine(b, spv.ServeOptions{CacheBytes: -1})
		for i := 0; i < b.N; i++ {
			if _, err := e.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := serveEngine(b, spv.ServeOptions{})
		if _, err := e.Query(q); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := e.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if !a.Cached {
				b.Fatal("expected cache hit")
			}
		}
	})
}

// BenchmarkServeBatch measures worker-pool fan-out with one 64-query mixed
// batch per op — 16 workload pairs × 4 methods, all distinct keys. The
// cold lane disables the cache so every op pays 64 real constructions; the
// warm lane is the steady state where the batch is served from cache.
func BenchmarkServeBatch(b *testing.B) {
	m := microSetup(b)
	batch := make([]spv.ServeQuery, 0, 64)
	for _, method := range []spv.Method{spv.DIJ, spv.FULL, spv.LDM, spv.HYP} {
		for _, q := range m.qs {
			batch = append(batch, spv.ServeQuery{Method: method, VS: q.S, VT: q.T})
		}
	}
	runBatch := func(b *testing.B, e *spv.QueryEngine) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			for _, a := range e.QueryBatch(batch) {
				if a.Err != nil {
					b.Fatal(a.Err)
				}
			}
		}
	}
	b.Run("cold64", func(b *testing.B) {
		runBatch(b, serveEngine(b, spv.ServeOptions{CacheBytes: -1}))
	})
	b.Run("warm64", func(b *testing.B) {
		e := serveEngine(b, spv.ServeOptions{})
		e.QueryBatch(batch) // warm the cache outside the timer
		b.ResetTimer()
		runBatch(b, e)
		s := e.Stats()
		b.ReportMetric(float64(s.Hits)/float64(s.Queries), "hit-rate")
	})
}

func BenchmarkOutsourcing(b *testing.B) {
	g, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	owner, err := spv.NewOwner(g, spv.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range spv.Methods() {
		b.Run(fmt.Sprintf("%s/n=%d", method, g.NumNodes()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				switch method {
				case spv.DIJ:
					_, err = owner.OutsourceDIJ()
				case spv.FULL:
					_, err = owner.OutsourceFULL()
				case spv.LDM:
					_, err = owner.OutsourceLDM()
				case spv.HYP:
					_, err = owner.OutsourceHYP()
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
