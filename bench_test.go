// Benchmarks regenerating the paper's evaluation (ICDE 2010, §VI): one
// testing.B benchmark per figure/table, plus per-method micro-benchmarks of
// the provider (proof generation) and client (verification) hot paths.
//
// The figure benchmarks run the full harness once per iteration and report
// the headline series as custom metrics, so `go test -bench=. -benchmem`
// regenerates the entire evaluation. Absolute times are hardware-bound; the
// shapes (who wins, growth trends) are the reproduction targets — see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Figure benchmarks use a reduced default (scale 0.05, 30 queries) to keep
// a full `go test -bench=.` run in minutes on one core; run cmd/spvbench
// for the full-scale tables.
package spv_test

import (
	"fmt"
	"testing"

	spv "github.com/authhints/spv"
	"github.com/authhints/spv/internal/bench"
)

// figSetup is the benchmark-sized experiment setting.
func figSetup() bench.Setup {
	s := bench.DefaultSetup()
	s.Scale = 0.05
	s.Queries = 30
	return s
}

// runFigure executes one harness figure per iteration and reports its first
// row's headline value as a metric.
func runFigure(b *testing.B, id string, metric string, col int) {
	b.Helper()
	s := figSetup()
	for i := 0; i < b.N; i++ {
		table, err := bench.Run(id, s)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) > 0 && col < len(table.Rows[0].Values) {
			b.ReportMetric(table.Rows[0].Values[col], metric)
		}
	}
}

// --- one benchmark per paper figure/table ---

func BenchmarkTable2Parameters(b *testing.B)   { runFigure(b, "table2", "scale", 0) }
func BenchmarkFig08aCommOverhead(b *testing.B) { runFigure(b, "fig8a", "DIJ-total-KB", 2) }
func BenchmarkFig08bProofItems(b *testing.B)   { runFigure(b, "fig8b", "DIJ-items", 2) }
func BenchmarkFig08cConstruction(b *testing.B) { runFigure(b, "fig8c", "FULL-sec", 0) }
func BenchmarkFig09aDatasets(b *testing.B)     { runFigure(b, "fig9a", "DE-DIJ-KB", 0) }
func BenchmarkFig09bDatasetBuild(b *testing.B) { runFigure(b, "fig9b", "DE-FULL-sec", 0) }
func BenchmarkFig10Orderings(b *testing.B)     { runFigure(b, "fig10", "bfs-DIJ-KB", 0) }
func BenchmarkFig11aFanout(b *testing.B)       { runFigure(b, "fig11a", "f2-DIJ-KB", 0) }
func BenchmarkFig11bQueryRange(b *testing.B)   { runFigure(b, "fig11b", "r250-DIJ-KB", 0) }
func BenchmarkFig12aLandmarksComm(b *testing.B) {
	runFigure(b, "fig12a", "c50-total-KB", 2)
}
func BenchmarkFig12bLandmarksBuild(b *testing.B) {
	runFigure(b, "fig12b", "c50-sec", 0)
}
func BenchmarkFig13aCellsComm(b *testing.B)  { runFigure(b, "fig13a", "p25-total-KB", 2) }
func BenchmarkFig13bCellsBuild(b *testing.B) { runFigure(b, "fig13b", "p25-sec", 0) }
func BenchmarkVerifyLatency(b *testing.B)    { runFigure(b, "verify", "DIJ-client-ms", 1) }
func BenchmarkExtAQuantBits(b *testing.B)    { runFigure(b, "extA", "b4-total-KB", 1) }
func BenchmarkExtBCompression(b *testing.B)  { runFigure(b, "extB", "xi0-total-KB", 1) }

// --- per-method micro-benchmarks: provider and client hot paths ---

type microWorld struct {
	g    *spv.Graph
	v    *spv.Verifier
	dij  *spv.DIJProvider
	full *spv.FULLProvider
	ldm  *spv.LDMProvider
	hyp  *spv.HYPProvider
	qs   []spv.Query
}

var micro *microWorld

func microSetup(b *testing.B) *microWorld {
	b.Helper()
	if micro != nil {
		return micro
	}
	g, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	owner, err := spv.NewOwner(g, spv.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := &microWorld{g: g, v: owner.Verifier()}
	if m.dij, err = owner.OutsourceDIJ(); err != nil {
		b.Fatal(err)
	}
	if m.full, err = owner.OutsourceFULL(); err != nil {
		b.Fatal(err)
	}
	if m.ldm, err = owner.OutsourceLDM(); err != nil {
		b.Fatal(err)
	}
	if m.hyp, err = owner.OutsourceHYP(); err != nil {
		b.Fatal(err)
	}
	if m.qs, err = spv.GenerateWorkload(g, 16, 4000, 9); err != nil {
		b.Fatal(err)
	}
	micro = m
	return m
}

func BenchmarkProviderQuery(b *testing.B) {
	m := microSetup(b)
	for _, method := range spv.Methods() {
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := m.qs[i%len(m.qs)]
				var err error
				switch method {
				case spv.DIJ:
					_, err = m.dij.Query(q.S, q.T)
				case spv.FULL:
					_, err = m.full.Query(q.S, q.T)
				case spv.LDM:
					_, err = m.ldm.Query(q.S, q.T)
				case spv.HYP:
					_, err = m.hyp.Query(q.S, q.T)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClientVerify(b *testing.B) {
	m := microSetup(b)
	q := m.qs[0]
	dp, err := m.dij.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := m.full.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	lp, err := m.ldm.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	hp, err := m.hyp.Query(q.S, q.T)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DIJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyDIJ(m.v, q.S, q.T, dp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FULL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyFULL(m.v, q.S, q.T, fp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LDM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyLDM(m.v, q.S, q.T, lp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HYP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := spv.VerifyHYP(m.v, q.S, q.T, hp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkOutsourcing(b *testing.B) {
	g, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	owner, err := spv.NewOwner(g, spv.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range spv.Methods() {
		b.Run(fmt.Sprintf("%s/n=%d", method, g.NumNodes()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				switch method {
				case spv.DIJ:
					_, err = owner.OutsourceDIJ()
				case spv.FULL:
					_, err = owner.OutsourceFULL()
				case spv.LDM:
					_, err = owner.OutsourceLDM()
				case spv.HYP:
					_, err = owner.OutsourceHYP()
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
