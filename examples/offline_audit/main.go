// Offline audit: batch-verifying an untrusted provider's query log.
//
// A transport authority (the data owner) periodically audits the answers a
// third-party service handed out during the day. The log holds serialized
// FULL proofs — the smallest proof format, ideal for archiving. The auditor
// replays each record through the wire decoder and the client verifier; any
// record that was tampered with after the fact, truncated in storage, or
// answered dishonestly is flagged.
//
// Run with:
//
//	go run ./examples/offline_audit
package main

import (
	"fmt"
	"log"

	spv "github.com/authhints/spv"
)

// logRecord is one archived answer.
type logRecord struct {
	S, T  spv.NodeID
	Proof []byte
}

func main() {
	network, err := spv.GenerateNetwork(spv.IND, spv.NetworkConfig{Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := spv.NewOwner(network, spv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	provider, err := owner.OutsourceFULL()
	if err != nil {
		log.Fatal(err)
	}

	// --- The day's traffic: 20 queries, archived as wire bytes ------------
	queries, err := spv.GenerateWorkload(network, 20, 3000, 3)
	if err != nil {
		log.Fatal(err)
	}
	records := make([]logRecord, 0, len(queries))
	for _, q := range queries {
		proof, err := provider.Query(q.S, q.T)
		if err != nil {
			log.Fatal(err)
		}
		records = append(records, logRecord{S: q.S, T: q.T, Proof: proof.AppendBinary(nil)})
	}
	total := 0
	for _, r := range records {
		total += len(r.Proof)
	}
	fmt.Printf("audit log: %d records, %.1f KB total (%.1f KB/record)\n\n",
		len(records), float64(total)/1024, float64(total)/float64(len(records))/1024)

	// --- Corrupt a few records, as a compromised archiver might -----------
	tampered := map[int]string{}
	for which, i := range []int{3, 9, 15} {
		r := &records[i]
		switch which {
		case 0: // flip bits in the claimed distance region
			r.Proof[12] ^= 0x40
			tampered[i] = "bit flip"
		case 1: // truncate (storage corruption)
			r.Proof = r.Proof[:len(r.Proof)-7]
			tampered[i] = "truncation"
		case 2: // splice another record's proof (replay)
			r.Proof = append([]byte(nil), records[(i+1)%len(records)].Proof...)
			tampered[i] = "replayed proof"
		}
	}

	// --- The audit ---------------------------------------------------------
	verifier := owner.Verifier()
	flagged := 0
	for i, r := range records {
		proof, _, err := spv.DecodeFULLProof(r.Proof)
		if err == nil {
			err = spv.VerifyFULL(verifier, r.S, r.T, proof)
		}
		if err != nil {
			kind, wasTampered := tampered[i]
			if !wasTampered {
				log.Fatalf("record %d: clean record failed audit: %v", i, err)
			}
			flagged++
			fmt.Printf("  record %2d: FLAGGED (%s)\n", i, kind)
		} else if _, wasTampered := tampered[i]; wasTampered {
			log.Fatalf("record %d: tampered record passed audit", i)
		}
	}
	fmt.Printf("\naudit complete: %d/%d records verified, %d flagged — all corruptions caught ✓\n",
		len(records)-flagged, len(records), flagged)
}
