// Logistics: detecting a profit-motivated routing service.
//
// The paper's motivating scenario (§I): a delivery company rents shortest
// path computation from an online service. The service, paid by a partner
// chain, quietly routes drivers past partner locations — a few percent
// longer per trip, invisible without verification.
//
// This example runs both an honest and a malicious provider over the same
// signed network. The malicious one returns real paths (every edge exists!)
// that are simply not shortest; only the HYP verification exposes it.
//
// Run with:
//
//	go run ./examples/logistics
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	spv "github.com/authhints/spv"
)

func main() {
	network, err := spv.GenerateNetwork(spv.ARG, spv.NetworkConfig{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := spv.NewOwner(network, spv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	provider, err := owner.OutsourceHYP()
	if err != nil {
		log.Fatal(err)
	}
	clientKey := owner.Verifier()

	deliveries, err := spv.GenerateWorkload(network, 6, 3500, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet dispatch over %d-node network, %d deliveries\n\n",
		network.NumNodes(), len(deliveries))

	rng := rand.New(rand.NewSource(13))
	caught, verified := 0, 0
	var extraKm float64
	for i, d := range deliveries {
		proof, err := provider.Query(d.S, d.T)
		if err != nil {
			log.Fatal(err)
		}
		// Half of the answers come from the "partner-friendly" code path:
		// the provider swaps in a real but longer route and sizes the rest
		// of the proof consistently.
		malicious := i%2 == 1
		if malicious {
			detour, detourDist := partnerDetour(network, d.S, d.T, rng)
			if detour == nil {
				malicious = false
			} else {
				proof.Path = detour
				proof.Dist = detourDist
			}
		}

		err = spv.VerifyHYP(clientKey, d.S, d.T, proof)
		switch {
		case err == nil && !malicious:
			verified++
			fmt.Printf("  delivery %d: %3d hops, %7.1f units — verified ✓\n",
				i+1, proof.Path.Hops(), proof.Dist)
		case err != nil && malicious:
			caught++
			honest, _ := spv.ShortestPath(network, d.S, d.T)
			extraKm += proof.Dist - honest
			fmt.Printf("  delivery %d: REJECTED (%v) — detour of +%.1f units caught ✓\n",
				i+1, shortReason(err), proof.Dist-honest)
		case err != nil && !malicious:
			log.Fatalf("delivery %d: honest answer rejected: %v", i+1, err)
		default:
			log.Fatalf("delivery %d: malicious answer ACCEPTED", i+1)
		}
	}
	fmt.Printf("\n%d honest deliveries verified, %d detours caught (%.1f units of padding avoided)\n",
		verified, caught, extraKm)
}

// partnerDetour fabricates a real-but-suboptimal route the way a subtle
// cheat would: block one segment of the true shortest path (forcing traffic
// past the partner's location on the alternative road) and route around it.
// The result is a genuine path in the original network, just not a shortest
// one.
func partnerDetour(g *spv.Graph, s, t spv.NodeID, rng *rand.Rand) (spv.Path, float64) {
	best, shortest := spv.ShortestPath(g, s, t)
	if shortest == nil || len(shortest) < 3 {
		return nil, 0
	}
	// Scan the honest route's segments from a random offset: most segments
	// of a sparse road network are bridges (no alternative), so try until a
	// cut leaves a longer way around.
	offset := rng.Intn(len(shortest) - 1)
	for k := 0; k < len(shortest)-1; k++ {
		i := 1 + (offset+k)%(len(shortest)-1)
		blocked := g.Clone()
		blocked.RemoveEdge(shortest[i-1], shortest[i])
		d, alt := spv.ShortestPath(blocked, s, t)
		if alt == nil || d <= best*(1+1e-9) {
			continue
		}
		// The detour is a real path in the ORIGINAL network too (removing
		// an edge cannot add edges), just not a shortest one.
		return alt, d
	}
	return nil, 0
}

func shortReason(err error) string {
	switch {
	case errors.Is(err, spv.ErrNotShortest):
		return "path is not shortest"
	case errors.Is(err, spv.ErrIncompleteProof):
		return "incomplete proof"
	case errors.Is(err, spv.ErrPathMismatch):
		return "path mismatch"
	case errors.Is(err, spv.ErrBadSignature):
		return "bad signature"
	default:
		return "rejected"
	}
}
