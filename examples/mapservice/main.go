// Mapservice: choosing a verification method for an online map service.
//
// The four methods trade offline hint construction against per-query proof
// size (the paper's central tension, Fig 8). This example deploys all four
// over the same network and prints the operational numbers a service
// architect would compare: build time, per-query proof size, provider and
// client latency.
//
// Run with:
//
//	go run ./examples/mapservice
package main

import (
	"fmt"
	"log"
	"time"

	spv "github.com/authhints/spv"
)

const queries = 25

func main() {
	network, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := spv.NewOwner(network, spv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	work, err := spv.GenerateWorkload(network, queries, 4000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map service capacity planning: %d nodes, %d queries/method\n\n",
		network.NumNodes(), queries)
	fmt.Printf("%-6s %12s %14s %14s %14s\n",
		"method", "build", "proof KB", "provider ms", "client ms")

	for _, m := range spv.Methods() {
		buildStart := time.Now()
		query, verify, err := deploy(owner, m)
		if err != nil {
			log.Fatal(err)
		}
		build := time.Since(buildStart)

		var provTime, cliTime time.Duration
		var bytes int
		for _, q := range work {
			t0 := time.Now()
			proofBytes, stats, err := query(q.S, q.T)
			if err != nil {
				log.Fatal(err)
			}
			provTime += time.Since(t0)
			bytes += stats.TotalBytes()

			t0 = time.Now()
			if err := verify(q.S, q.T, proofBytes); err != nil {
				log.Fatalf("%s: verification failed: %v", m, err)
			}
			cliTime += time.Since(t0)
		}
		fmt.Printf("%-6s %12s %14.1f %14.3f %14.3f\n",
			m, build.Round(time.Millisecond),
			float64(bytes)/float64(queries)/1024,
			provTime.Seconds()*1000/queries,
			cliTime.Seconds()*1000/queries)
	}
	fmt.Println("\nreading the table: FULL buys the smallest proofs with the most")
	fmt.Println("pre-computation; DIJ needs none but ships the largest proofs;")
	fmt.Println("LDM and HYP sit between — the paper's Fig 8 trade-off.")
}

// deploy outsources one method through the method registry and returns
// closures that exercise it through the real wire format: proofs are
// serialized by the provider and decoded by the client, exactly as they
// would cross a network. No per-method wiring — any registered method
// deploys the same way.
func deploy(owner *spv.Owner, m spv.Method) (
	func(s, t spv.NodeID) ([]byte, spv.ProofStats, error),
	func(s, t spv.NodeID, wire []byte) error,
	error,
) {
	v := owner.Verifier()
	p, err := owner.Outsource(m)
	if err != nil {
		return nil, nil, err
	}
	return func(s, t spv.NodeID) ([]byte, spv.ProofStats, error) {
			proof, err := p.QueryProof(s, t)
			if err != nil {
				return nil, spv.ProofStats{}, err
			}
			return proof.AppendBinary(nil), proof.Stats(), nil
		}, func(s, t spv.NodeID, wire []byte) error {
			proof, _, err := spv.DecodeProof(m, wire)
			if err != nil {
				return err
			}
			return spv.VerifyProof(v, m, s, t, proof)
		}, nil
}
