// Serving demonstrates the provider serving layer: one engine fronting two
// methods, a batched workload fanned out over the worker pool, cache-hit
// amortization across repeated queries, and full client-side verification
// of the wire proofs — the in-process version of what cmd/spvserve exposes
// over HTTP.
package main

import (
	"fmt"
	"log"

	spv "github.com/authhints/spv"
)

func main() {
	g, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	cfg := spv.DefaultConfig()
	cfg.Landmarks = 12
	cfg.Cells = 25
	owner, err := spv.NewOwner(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The engine outsources once and then serves any number of goroutines.
	engine, err := spv.NewEngine(owner, spv.ServeOptions{Workers: 4}, spv.LDM, spv.HYP)
	if err != nil {
		log.Fatal(err)
	}

	queries, err := spv.GenerateWorkload(g, 6, 2500, 42)
	if err != nil {
		log.Fatal(err)
	}

	// A mixed batch: every query twice, so half the work dedups or hits.
	var batch []spv.ServeQuery
	for _, m := range []spv.Method{spv.LDM, spv.HYP} {
		for _, q := range queries {
			batch = append(batch,
				spv.ServeQuery{Method: m, VS: q.S, VT: q.T},
				spv.ServeQuery{Method: m, VS: q.S, VT: q.T})
		}
	}
	answers := engine.QueryBatch(batch)

	// Clients verify each wire proof against the owner's public key.
	verifier := owner.Verifier()
	for _, a := range answers {
		if a.Err != nil {
			log.Fatalf("%v: %v", a.Query, a.Err)
		}
		switch a.Query.Method {
		case spv.LDM:
			pr, _, err := spv.DecodeLDMProof(a.Proof)
			if err == nil {
				err = spv.VerifyLDM(verifier, a.Query.VS, a.Query.VT, pr)
			}
			if err != nil {
				log.Fatalf("LDM %d→%d: %v", a.Query.VS, a.Query.VT, err)
			}
		case spv.HYP:
			pr, _, err := spv.DecodeHYPProof(a.Proof)
			if err == nil {
				err = spv.VerifyHYP(verifier, a.Query.VS, a.Query.VT, pr)
			}
			if err != nil {
				log.Fatalf("HYP %d→%d: %v", a.Query.VS, a.Query.VT, err)
			}
		}
	}
	fmt.Printf("verified %d proofs across %d queries\n", len(answers), len(batch))

	s := engine.Stats()
	fmt.Printf("engine: %d queries, %d cold builds, %d cache hits, %d deduped\n",
		s.Queries, s.Misses, s.Hits, s.Deduped)
	fmt.Printf("served %d proof bytes; %v spent in cold construction\n",
		s.ProofBytes, s.ColdTime.Round(1000))
}
