// Quickstart: the complete three-party workflow in one file.
//
// A data owner outsources a road network with landmark-based authenticated
// hints (LDM), a service provider answers one shortest path query, and a
// client verifies the result with nothing but the owner's public key.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	spv "github.com/authhints/spv"
)

func main() {
	// --- Data owner -------------------------------------------------------
	// Synthesize a Germany-shaped road network (≈2,900 junctions at 1/10
	// scale) and build the authenticated structures.
	network, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner: road network with %d nodes, %d edges\n",
		network.NumNodes(), network.NumEdges())

	owner, err := spv.NewOwner(network, spv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	provider, err := owner.OutsourceLDM() // hints + Merkle tree + signature
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("owner: network outsourced to the service provider (LDM hints)")

	// --- Client picks a query --------------------------------------------
	queries, err := spv.GenerateWorkload(network, 1, 4000, 42)
	if err != nil {
		log.Fatal(err)
	}
	vs, vt := queries[0].S, queries[0].T

	// --- Service provider answers ----------------------------------------
	proof, err := provider.Query(vs, vt)
	if err != nil {
		log.Fatal(err)
	}
	stats := proof.Stats()
	fmt.Printf("provider: path %d→%d, %d hops, distance %.1f\n",
		vs, vt, proof.Path.Hops(), proof.Dist)
	fmt.Printf("provider: proof is %.1f KB (ΓS %.1f KB + ΓT %.1f KB, %d items)\n",
		stats.KBytes(), float64(stats.SBytes)/1024, float64(stats.TBytes)/1024,
		stats.TotalItems())

	// --- Client verifies ---------------------------------------------------
	if err := spv.VerifyLDM(owner.Verifier(), vs, vt, proof); err != nil {
		log.Fatalf("client: REJECTED: %v", err)
	}
	fmt.Println("client: verified — the path is authentic and optimal ✓")

	// A tampered answer is caught immediately.
	proof.Dist += 100
	if err := spv.VerifyLDM(owner.Verifier(), vs, vt, proof); err != nil {
		fmt.Println("client: tampered answer rejected ✓")
	} else {
		log.Fatal("client: tampered answer was accepted!")
	}
}
