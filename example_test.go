package spv_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	spv "github.com/authhints/spv"
)

// ExampleSaveSnapshot shows the owner's half of the replication story:
// outsource once, persist the complete deployment — graph, authenticated
// structures with every precomputed digest, signatures, epoch — to one
// file that any number of replicas can boot from.
func ExampleSaveSnapshot() {
	g, _ := spv.SynthesizeNetwork(120, 160, 1)
	cfg := spv.DefaultConfig()
	cfg.Landmarks = 5
	owner, _ := spv.NewOwnerWithSigner(g, cfg, mustKey())
	dep, _ := spv.NewDeployment(owner, spv.ServeOptions{}, spv.LDM)

	dir, _ := os.MkdirTemp("", "spv-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "world.spv")

	n, err := spv.SaveSnapshot(path, dep)
	fmt.Println("saved:", err == nil, "bytes >", n > 0)
	// Output:
	// saved: true bytes > true
}

// ExampleLoadEngine shows the replica's half: cold-start a serving engine
// from a snapshot file — no hashing, no Dijkstra re-runs — and serve
// proofs byte-identical to the origin's, verifiable against the embedded
// public key.
func ExampleLoadEngine() {
	g, _ := spv.SynthesizeNetwork(120, 160, 1)
	cfg := spv.DefaultConfig()
	cfg.Landmarks = 5
	owner, _ := spv.NewOwnerWithSigner(g, cfg, mustKey())
	dep, _ := spv.NewDeployment(owner, spv.ServeOptions{}, spv.LDM)

	dir, _ := os.MkdirTemp("", "spv-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "world.spv")
	if _, err := spv.SaveSnapshot(path, dep); err != nil {
		fmt.Println("save:", err)
		return
	}

	// On another machine: boot a replica from the file alone.
	replica, set, err := spv.LoadEngine(path, spv.ServeOptions{})
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	q := spv.ServeQuery{Method: spv.LDM, VS: 3, VT: 90}
	origin, _ := dep.Engine().Query(q)
	answer, _ := replica.Query(q)

	proof, _, _ := spv.DecodeLDMProof(answer.Proof)
	verified := spv.VerifyLDM(set.Verifier, q.VS, q.VT, proof) == nil
	fmt.Println("byte-identical:", bytes.Equal(origin.Proof, answer.Proof), "verified:", verified)
	// Output:
	// byte-identical: true verified: true
}

// mustKey generates a throwaway owner key for the examples.
func mustKey() *spv.Signer {
	s, err := spv.GenerateOwnerKey(1024)
	if err != nil {
		panic(err)
	}
	return s
}
