package spv_test

import (
	"errors"
	"testing"

	spv "github.com/authhints/spv"
)

// TestPublicAPIEndToEnd drives the whole workflow through the public facade
// only, as a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := spv.GenerateNetwork(spv.DE, spv.NetworkConfig{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg := spv.DefaultConfig()
	cfg.Landmarks = 8
	cfg.Cells = 16
	owner, err := spv.NewOwner(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := spv.GenerateWorkload(g, 3, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	pub := owner.Verifier()

	dij, err := owner.OutsourceDIJ()
	if err != nil {
		t.Fatal(err)
	}
	full, err := owner.OutsourceFULL()
	if err != nil {
		t.Fatal(err)
	}
	ldm, err := owner.OutsourceLDM()
	if err != nil {
		t.Fatal(err)
	}
	hyp, err := owner.OutsourceHYP()
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range queries {
		oracle, _ := spv.ShortestPath(g, q.S, q.T)

		dp, err := dij.Query(q.S, q.T)
		if err != nil {
			t.Fatal(err)
		}
		if err := spv.VerifyDIJ(pub, q.S, q.T, dp); err != nil {
			t.Errorf("DIJ: %v", err)
		}
		fp, err := full.Query(q.S, q.T)
		if err != nil {
			t.Fatal(err)
		}
		if err := spv.VerifyFULL(pub, q.S, q.T, fp); err != nil {
			t.Errorf("FULL: %v", err)
		}
		lp, err := ldm.Query(q.S, q.T)
		if err != nil {
			t.Fatal(err)
		}
		if err := spv.VerifyLDM(pub, q.S, q.T, lp); err != nil {
			t.Errorf("LDM: %v", err)
		}
		hp, err := hyp.Query(q.S, q.T)
		if err != nil {
			t.Fatal(err)
		}
		if err := spv.VerifyHYP(pub, q.S, q.T, hp); err != nil {
			t.Errorf("HYP: %v", err)
		}
		if dp.Dist != oracle {
			t.Errorf("reported distance %v, oracle %v", dp.Dist, oracle)
		}

		// Tampering is detected through the facade too.
		dp.Dist *= 1.5
		if err := spv.VerifyDIJ(pub, q.S, q.T, dp); !errors.Is(err, spv.ErrRejected) {
			t.Error("tampered proof accepted via facade")
		}
	}
}

func TestPublicConstantsCoherent(t *testing.T) {
	if len(spv.Methods()) != 4 {
		t.Error("expected 4 methods")
	}
	if len(spv.Datasets()) != 4 {
		t.Error("expected 4 datasets")
	}
	cfg := spv.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if cfg.Ordering != spv.OrderHilbert {
		t.Error("default ordering should be Hilbert")
	}
	if cfg.Hash != spv.SHA1 {
		t.Error("default hash should be SHA-1 (paper cost model)")
	}
	if cfg.Strategy != spv.LandmarksFarthest {
		t.Error("default landmark strategy should be farthest")
	}
}
