module github.com/authhints/spv

go 1.22
